"""Architecture-description file format: laws, examples, CLI wiring.

Four contracts live here:

* **format laws** — round-trip stability, unknown-key and version-skew
  rejection, torn/invalid files surfacing as one-line
  :class:`~repro.errors.ConfigurationError` diagnostics;
* **examples are schema-valid** — every file under ``examples/arch/``
  loads, names are unique, fingerprints are distinct, and the default
  spec file reproduces ``DEFAULT_PARAMS`` exactly;
* **byte-identity differential** — ``repro bench --arch <default spec>``
  emits byte-identical reports to a flagless run in all three formats;
* **sweep execution** — ``--arch-sweep`` sections follow deterministic
  filename order, and the ``--shard`` composition emits one export per
  variant keyed by that variant's own fingerprints.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.arch.spec import (
    ARCH_SCHEMA_VERSION,
    DEFAULT_ARCH,
    ArchDescription,
    dump_arch,
    from_document,
    load_arch,
    load_arch_sweep,
    loads_arch,
    save_arch,
    validate_document,
)
from repro.cli import main
from repro.errors import ConfigurationError

EXAMPLES_DIR = Path(__file__).parents[1] / "examples" / "arch"
DEFAULT_SPEC = EXAMPLES_DIR / "marionette_default.json"

VARIANT = ArchDescription(
    name="mesh-probe",
    params=ArchParams(rows=8, cols=8, nonlinear_pes=8,
                      control_topology="mesh"),
    description="an 8x8 mesh-only probe",
)


def _one_line(error: pytest.ExceptionInfo) -> str:
    text = str(error.value)
    assert "\n" not in text, f"diagnostic spans lines: {text!r}"
    return text


# ----------------------------------------------------------------------
# Round-trip laws
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("desc", [DEFAULT_ARCH, VARIANT],
                             ids=["default", "variant"])
    def test_loads_of_dump_is_identity(self, desc):
        assert loads_arch(dump_arch(desc)) == desc

    def test_dump_is_stable_across_dumps(self):
        assert dump_arch(VARIANT) == dump_arch(
            loads_arch(dump_arch(VARIANT)))

    def test_save_load_file_round_trip(self, tmp_path):
        path = tmp_path / "variant.json"
        save_arch(VARIANT, path)
        assert load_arch(path) == VARIANT

    def test_network_key_is_the_topology(self):
        assert VARIANT.network == "mesh"
        assert VARIANT.to_document()["network"] == "mesh"
        assert "control_topology" not in VARIANT.to_document()["params"]

    def test_fingerprint_distinguishes_variants(self):
        assert DEFAULT_ARCH.fingerprint() != VARIANT.fingerprint()
        renamed = replace(VARIANT, name="other-name")
        assert renamed.fingerprint() != VARIANT.fingerprint()

    def test_fingerprint_is_deterministic(self):
        assert VARIANT.fingerprint() == loads_arch(
            dump_arch(VARIANT)).fingerprint()


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
class TestValidation:
    def _document(self, **overrides):
        document = DEFAULT_ARCH.to_document()
        document.update(overrides)
        return document

    def test_valid_document_passes(self):
        assert from_document(self._document()) == DEFAULT_ARCH

    def test_non_object_document_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            validate_document([1, 2, 3], source="x.json")
        assert "x.json" in _one_line(error)

    def test_wrong_schema_marker_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            validate_document(self._document(schema="other-format"))
        assert "not an arch description" in _one_line(error)

    @pytest.mark.parametrize("version", [0, ARCH_SCHEMA_VERSION + 1,
                                         "1", None])
    def test_version_skew_rejected_naming_both_versions(self, version):
        with pytest.raises(ConfigurationError) as error:
            validate_document(self._document(version=version))
        text = _one_line(error)
        assert str(ARCH_SCHEMA_VERSION) in text
        assert repr(version) in text

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            validate_document(self._document(frequency=500))
        assert "frequency" in _one_line(error)

    def test_missing_required_key_rejected(self):
        document = self._document()
        del document["network"]
        with pytest.raises(ConfigurationError) as error:
            validate_document(document)
        assert "network" in _one_line(error)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            from_document(self._document(name="  "))
        assert "name" in _one_line(error)

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            from_document(self._document(network="torus"))
        assert "torus" in _one_line(error)

    def test_non_object_params_rejected(self):
        with pytest.raises(ConfigurationError) as error:
            validate_document(self._document(params=[4, 4]))
        assert "params" in _one_line(error)

    def test_topology_inside_params_rejected(self):
        document = self._document()
        document["params"] = dict(document["params"],
                                  control_topology="mesh")
        with pytest.raises(ConfigurationError) as error:
            validate_document(document)
        assert "'network'" in _one_line(error)

    def test_unknown_params_key_rejected(self):
        document = self._document()
        document["params"] = dict(document["params"], rosw=4)
        with pytest.raises(ConfigurationError) as error:
            validate_document(document)
        assert "rosw" in _one_line(error)

    @pytest.mark.parametrize("value", [True, 4.0, "4", None],
                             ids=["bool", "float", "str", "null"])
    def test_non_integer_param_value_rejected(self, value):
        document = self._document()
        document["params"] = dict(document["params"], rows=value)
        with pytest.raises(ConfigurationError) as error:
            validate_document(document)
        assert "params.rows" in _one_line(error)

    def test_arch_params_validation_runs_on_load(self):
        # The document is well-formed JSON but names an impossible
        # machine; ArchParams' own checks must still fire, prefixed
        # with the source.
        document = self._document()
        document["params"] = dict(document["params"], sram_banks=0)
        with pytest.raises(ConfigurationError) as error:
            from_document(document, source="bad.json")
        text = _one_line(error)
        assert "bad.json" in text and "sram_banks" in text


# ----------------------------------------------------------------------
# File-level failure modes
# ----------------------------------------------------------------------
class TestLoadFailures:
    def test_missing_file_is_one_line_diagnostic(self, tmp_path):
        with pytest.raises(ConfigurationError) as error:
            load_arch(tmp_path / "absent.json")
        assert "absent.json" in _one_line(error)

    def test_torn_json_is_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text(dump_arch(DEFAULT_ARCH)[:40], encoding="utf-8")
        with pytest.raises(ConfigurationError) as error:
            load_arch(path)
        text = _one_line(error)
        assert "torn.json" in text and "invalid arch description" in text

    def test_non_json_file_is_one_line_diagnostic(self, tmp_path):
        path = tmp_path / "notes.json"
        path.write_text("rows: 4\ncols: 4\n", encoding="utf-8")
        with pytest.raises(ConfigurationError) as error:
            load_arch(path)
        assert "notes.json" in _one_line(error)


# ----------------------------------------------------------------------
# Sweep directory loading
# ----------------------------------------------------------------------
class TestSweepLoading:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError) as error:
            load_arch_sweep(tmp_path / "absent")
        assert "does not exist" in _one_line(error)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError) as error:
            load_arch_sweep(tmp_path)
        assert "no .json" in _one_line(error)

    def test_duplicate_variant_names_rejected(self, tmp_path):
        save_arch(DEFAULT_ARCH, tmp_path / "a.json")
        save_arch(replace(DEFAULT_ARCH, description="same name"),
                  tmp_path / "b.json")
        with pytest.raises(ConfigurationError) as error:
            load_arch_sweep(tmp_path)
        assert "marionette-default" in _one_line(error)

    def test_filename_order_not_declaration_order(self, tmp_path):
        save_arch(VARIANT, tmp_path / "z_last.json")
        save_arch(DEFAULT_ARCH, tmp_path / "a_first.json")
        (tmp_path / "README.md").write_text("not a spec\n")
        names = [desc.name for _path, desc in load_arch_sweep(tmp_path)]
        assert names == ["marionette-default", "mesh-probe"]


# ----------------------------------------------------------------------
# The shipped examples (CI for examples/arch/)
# ----------------------------------------------------------------------
class TestShippedExamples:
    def test_directory_holds_default_plus_variants(self):
        paths = sorted(EXAMPLES_DIR.glob("*.json"))
        assert DEFAULT_SPEC in paths
        assert len(paths) >= 4

    def test_every_example_is_schema_valid(self):
        # load_arch_sweep validates each file and rejects duplicate
        # names, so one call covers the whole directory.
        entries = load_arch_sweep(EXAMPLES_DIR)
        assert len(entries) >= 4

    def test_every_example_is_in_canonical_form(self):
        # A hand-edited file that drifts from dump_arch's formatting
        # would break dump/load round-trip diffs; keep them canonical.
        for path, desc in load_arch_sweep(EXAMPLES_DIR):
            assert path.read_text(encoding="utf-8") == dump_arch(desc), \
                f"{path} is not canonically formatted"

    def test_example_fingerprints_are_distinct(self):
        prints = [desc.fingerprint()
                  for _path, desc in load_arch_sweep(EXAMPLES_DIR)]
        assert len(set(prints)) == len(prints)

    def test_default_spec_reproduces_default_params(self):
        desc = load_arch(DEFAULT_SPEC)
        assert desc.params == DEFAULT_PARAMS
        assert desc.network == "cs_benes"
        assert desc == DEFAULT_ARCH


# ----------------------------------------------------------------------
# CLI: byte-identity differential and sweep execution
# ----------------------------------------------------------------------
class TestArchCli:
    @pytest.mark.parametrize("fmt", ["ascii", "json", "csv"])
    def test_default_spec_is_byte_identical_to_flagless(self, fmt,
                                                        capsys):
        assert main(["bench", "--scale", "tiny", "--format", fmt]) == 0
        flagless = capsys.readouterr().out
        assert main(["bench", "--scale", "tiny", "--format", fmt,
                     "--arch", str(DEFAULT_SPEC)]) == 0
        assert capsys.readouterr().out == flagless

    def test_unreadable_arch_file_exits_2(self, capsys, tmp_path):
        assert main(["bench", "--scale", "tiny",
                     "--arch", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "absent.json" in err

    def test_variant_arch_changes_the_report(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--format", "csv"]) == 0
        default = capsys.readouterr().out
        assert main(["bench", "--scale", "tiny", "--format", "csv",
                     "--arch", str(EXAMPLES_DIR / "mesh_8x8.json")]) == 0
        assert capsys.readouterr().out != default

    def test_sweep_sections_follow_filename_order(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--arch-sweep", str(EXAMPLES_DIR)]) == 0
        captured = capsys.readouterr()
        expected = load_arch_sweep(EXAMPLES_DIR)
        headers = [line for line in captured.out.splitlines()
                   if line.startswith("== arch: ")]
        assert headers == [
            f"== arch: {desc.name} ({path.name}) "
            f"fingerprint {desc.fingerprint()[:12]} =="
            for path, desc in expected
        ]
        assert f"{len(expected)} variant(s)" in captured.err

    def test_sweep_shard_exports_one_document_per_variant(self, capsys):
        from repro.experiments.report import all_specs

        assert main(["bench", "--scale", "tiny", "--shard", "1/1",
                     "--arch-sweep", str(EXAMPLES_DIR)]) == 0
        lines = capsys.readouterr().out.splitlines()
        documents = [json.loads(line) for line in lines if line.strip()]
        expected = load_arch_sweep(EXAMPLES_DIR)
        assert [doc["arch"] for doc in documents] \
            == [desc.name for _path, desc in expected]
        spec_sets = []
        for doc, (_path, desc) in zip(documents, expected):
            prints = {spec.fingerprint()
                      for spec in all_specs("tiny", 0, desc.params)}
            # Every spec of this variant landed in this variant's
            # export (entries also hold shared functional traces).
            assert prints <= set(doc["entries"])
            spec_sets.append(prints)
        # Arch identity is in every fingerprint: no variant's cycle
        # records can collide with another's.
        union = set().union(*spec_sets)
        assert len(union) == sum(len(s) for s in spec_sets)
