"""Differential property suite for the vectorized follower data plane.

Three layers of proof that the vector fast path cannot be observed:

* **op-table differential** — every entry in
  :data:`repro.sim.vector_ops.VECTOR_OPS` is evaluated over a boundary
  operand grid (zeros, sign flips, shift-count edges, ``±OPERAND_LIMIT``)
  and must reproduce the scalar :func:`repro.ir.ops.op_info` semantics
  bit-for-bit, returning exact Python ints;
* **cohort differential** — lockstep batches whose data is int-only,
  float, bool, overflow-boundary, or out-of-bounds must all stay
  bit-identical to per-member naive runs, with the
  :class:`~repro.sim.batch.BatchStats` counters proving which path ran
  (vector hit, scalar row loop, or divergence fallback);
* **tape sharing** — equal-geometry cohorts replay one recorded tape
  (``tape_records``/``tape_hits``), and a shared tape never changes a
  member's result.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.engine.executor import EngineStats
from repro.ir.ops import Opcode, op_info
from repro.sim.batch import (
    BatchRun,
    TapeStore,
    batch_stats,
    simulate_batch,
)
from repro.sim.vector_ops import OPERAND_LIMIT, VECTOR_OPS

from test_sim_array import vec_mul_program
from test_sim_event import data_branch_program, run_naive, assert_identical

# Operand values that stress every overflow proof in vector_ops.py:
# sign flips, wrap32 edges, shift counts at/over the 31-bit mask, and
# the eligibility bound itself (inclusive on both sides).
BOUNDARY = (
    0, 1, -1, 2, -2, 3, 30, 31, 32, 33, -31, -33,
    1000, -1000, 0x7FFFFFFE, OPERAND_LIMIT, -OPERAND_LIMIT,
)

UNARY_OPS = {Opcode.ABS, Opcode.NEG, Opcode.NOT}
TERNARY_OPS = {Opcode.SELECT}


def _columns(arity):
    """All boundary tuples of the given arity, as parallel int64 columns."""
    if arity == 3:
        # The full cube is 17^3; condition values only matter as
        # zero/nonzero, so three representatives suffice.
        rows = [(c, a, b) for c in (0, 1, -1)
                for a, b in itertools.product(BOUNDARY, BOUNDARY)]
    else:
        rows = list(itertools.product(BOUNDARY, repeat=arity))
    return rows, [np.array(col, dtype=np.int64)
                  for col in zip(*rows)]


class TestOpTableDifferential:
    @pytest.mark.parametrize("opcode", sorted(VECTOR_OPS, key=lambda o: o.name))
    def test_vector_matches_scalar_bit_for_bit(self, opcode):
        arity = 3 if opcode in TERNARY_OPS else \
            1 if opcode in UNARY_OPS else 2
        rows, columns = _columns(arity)
        scalar = op_info(opcode).evaluate
        got = VECTOR_OPS[opcode](*columns).tolist()
        expected = [scalar(*operands) for operands in rows]
        assert got == expected
        assert all(type(value) is int for value in got)

    def test_vetted_table_excludes_trapping_and_float_ops(self):
        """DIV/MOD raise per-row (zero divisor) and the nonlinear ops
        are float math — none may gain a vector entry without a proof
        of identical per-row failure semantics."""
        banned = {Opcode.DIV, Opcode.MOD, Opcode.LOG, Opcode.EXP,
                  Opcode.SQRT, Opcode.SIGMOID, Opcode.SIN, Opcode.COS}
        assert banned.isdisjoint(VECTOR_OPS)

    def test_arity_of_every_vetted_op_matches_the_isa(self):
        for opcode in VECTOR_OPS:
            arity = 3 if opcode in TERNARY_OPS else \
                1 if opcode in UNARY_OPS else 2
            assert op_info(opcode).arity == arity


# ----------------------------------------------------------------------
# Cohort differential: the fast path must be unobservable
# ----------------------------------------------------------------------
def _batch_vs_naive(params, program, member_arrays, *, stats=None,
                    halt_messages=999):
    """Simulate one lockstep batch (isolated tape store) and assert
    every member bit-identical to its standalone naive run."""
    results = simulate_batch(
        params, program,
        [BatchRun(arrays=arrays) for arrays in member_arrays],
        halt_messages=halt_messages, stats=stats,
        tape_store=TapeStore(),
    )
    for member, arrays in zip(results, member_arrays):
        assert_identical(
            run_naive(params, program, arrays,
                      halt_messages=halt_messages),
            member,
        )
    return results


class TestCohortDifferential:
    def test_int_cohort_takes_the_vector_path(self, params):
        n = 12
        rng = np.random.default_rng(5)
        members = [{"A": rng.integers(1, 100, n),
                    "B": rng.integers(1, 100, n)} for _ in range(8)]
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        assert stats.vector_evals > 0
        assert stats.fallback_rows == 0

    def test_float_members_run_the_scalar_rows(self, params):
        n = 8
        members = [
            {"A": [i + member / 4 for i in range(1, n + 1)],
             "B": [0.5] * n}
            for member in range(4)
        ]
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        assert stats.vector_evals == 0
        assert stats.scalar_evals > 0

    def test_bool_operands_are_ineligible(self, params):
        """``True``/``False`` are int-valued but not ``int`` — the
        scalar plane propagates the bool type, so the vector path
        (which would coerce to int) must refuse the column."""
        n = 6
        members = [
            {"A": [bool((i + member) % 2) for i in range(n)],
             "B": list(range(1, n + 1))}
            for member in range(4)
        ]
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        assert stats.vector_evals == 0
        assert stats.scalar_evals > 0

    def test_mixed_type_rows_fall_back_together(self, params):
        """One float row poisons the column for that firing — the whole
        firing takes the scalar loop (per-row mixing would split the
        type discipline) and stays exact."""
        n = 8
        members = [{"A": list(range(1, n + 1)),
                    "B": list(range(2, n + 2))} for _ in range(4)]
        members[2]["A"] = [float(v) + 0.25 for v in members[2]["A"]]
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        assert stats.vector_evals == 0
        assert stats.scalar_evals > 0

    def test_limit_operands_are_still_eligible_and_exact(self, params):
        """``±OPERAND_LIMIT`` is inside the bound (inclusive): products
        reach 2**62 in the int64 plane and must come back exact."""
        n = 4
        members = [
            {"A": [OPERAND_LIMIT, -OPERAND_LIMIT,
                   OPERAND_LIMIT, -OPERAND_LIMIT],
             "B": [OPERAND_LIMIT, OPERAND_LIMIT,
                   -OPERAND_LIMIT, member + 1]}
            for member in range(4)
        ]
        stats = EngineStats()
        results = _batch_vs_naive(
            params, vec_mul_program(params, n), members, stats=stats,
        )
        assert stats.vector_evals > 0
        out_base = 2 * n
        image = results[0].scratchpad.data[out_base:out_base + n]
        assert image[0] == OPERAND_LIMIT * OPERAND_LIMIT

    def test_operands_past_the_limit_force_the_scalar_rows(self, params):
        n = 4
        members = [{"A": [OPERAND_LIMIT + 1] * n,
                    "B": [member + 1] * n} for member in range(4)]
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        assert stats.vector_evals == 0
        assert stats.scalar_evals > 0

    def test_divergent_branches_accrue_fallback_rows(self, params):
        n = 24
        rng = np.random.default_rng(7)
        members = [{"A": rng.integers(0, 50, n)} for _ in range(8)]
        stats = EngineStats()
        _batch_vs_naive(params, data_branch_program(params, n), members,
                        stats=stats)
        assert stats.fallback_rows > 0

    def test_global_stats_accrue_alongside_the_sink(self, params):
        n = 8
        members = [{"A": np.arange(1, n + 1),
                    "B": np.arange(2, n + 2)} for _ in range(4)]
        before = batch_stats().as_dict()
        stats = EngineStats()
        _batch_vs_naive(params, vec_mul_program(params, n), members,
                        stats=stats)
        after = batch_stats().as_dict()
        for key in ("vector_evals", "scalar_evals", "tape_records"):
            assert after[key] - before[key] == getattr(stats, key)

    def test_engine_stats_surface_the_batch_counters(self):
        stats = EngineStats().as_dict()
        for key in ("vector_evals", "scalar_evals", "fallback_rows",
                    "tape_hits", "tape_records"):
            assert stats[key] == 0


# ----------------------------------------------------------------------
# Cross-cohort tape sharing
# ----------------------------------------------------------------------
class TestTapeSharing:
    def _members(self, n, count, seed):
        rng = np.random.default_rng(seed)
        return [{"A": rng.integers(1, 100, n),
                 "B": rng.integers(1, 100, n)} for _ in range(count)]

    def test_equal_geometry_cohorts_share_one_tape(self, params):
        n = 10
        program = vec_mul_program(params, n)
        store = TapeStore()
        first = EngineStats()
        simulate_batch(params, program,
                       [BatchRun(arrays=a) for a in self._members(n, 4, 1)],
                       halt_messages=999, stats=first, tape_store=store)
        assert first.tape_records == 1
        assert first.tape_hits == 0
        assert len(store) == 1

        second = EngineStats()
        members = self._members(n, 6, 2)
        results = simulate_batch(
            params, program, [BatchRun(arrays=a) for a in members],
            halt_messages=999, stats=second, tape_store=store,
        )
        assert second.tape_hits == 1
        assert second.tape_records == 0
        # A shared tape is replay-verified per member: results still
        # match each member's own naive run bit-for-bit.
        for member, arrays in zip(results, members):
            assert_identical(
                run_naive(params, program, arrays, halt_messages=999),
                member,
            )

    def test_program_and_truncation_key_the_store(self, params):
        store = TapeStore()
        stats = EngineStats()
        for program in (vec_mul_program(params, 6),
                        vec_mul_program(params, 12)):
            simulate_batch(params, program,
                           [BatchRun(arrays={"A": np.ones(4),
                                             "B": np.ones(4)})
                            for _ in range(2)],
                           halt_messages=999, stats=stats,
                           tape_store=store)
        assert stats.tape_records == 2
        assert stats.tape_hits == 0
        # Same program under a different cycle budget records again —
        # a truncated tape must never serve an untruncated cohort.
        simulate_batch(params, vec_mul_program(params, 6),
                       [BatchRun(arrays={"A": np.ones(4),
                                         "B": np.ones(4)})
                        for _ in range(2)],
                       halt_messages=999, max_cycles=64,
                       stats=stats, tape_store=store)
        assert stats.tape_records == 3
        assert len(store) == 3

    def test_per_member_params_split_tapes_not_members(self, params):
        """Cohorts split by per-member params each record (or hit)
        their own tape under their own params key."""
        from dataclasses import replace

        n = 6
        program = vec_mul_program(params, n)
        slow = replace(params, data_net_latency=9)
        arrays = {"A": np.arange(1, n + 1), "B": np.arange(2, n + 2)}
        store = TapeStore()
        stats = EngineStats()
        simulate_batch(params, program,
                       [BatchRun(arrays=arrays),
                        BatchRun(arrays=arrays, params=slow),
                        BatchRun(arrays=arrays)],
                       halt_messages=999, stats=stats, tape_store=store)
        assert stats.tape_records == 2
        assert len(store) == 2

    def test_lru_eviction_bounds_the_store(self, params):
        store = TapeStore(capacity=2)
        for n in (4, 6, 8):
            simulate_batch(params, vec_mul_program(params, n),
                           [BatchRun(arrays={"A": np.ones(2),
                                             "B": np.ones(2)})
                            for _ in range(2)],
                           halt_messages=999, tape_store=store)
        assert len(store) == 2

    def test_fingerprint_is_structural_and_stable(self, params):
        a = vec_mul_program(params, 8).fingerprint()
        b = vec_mul_program(params, 8).fingerprint()
        c = vec_mul_program(params, 9).fingerprint()
        assert a == b
        assert a != c
        assert len(a) == 64
