"""Placement, routing, reshape, and pipeline-arithmetic tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompilationError, PlacementError
from repro.arch.params import ArchParams
from repro.arch.topology import Coord, Grid
from repro.compiler.mapping import BBPlacement
from repro.compiler.pipeline import pipeline_cycles, serial_cycles, PipelineShape
from repro.compiler.place import place_block
from repro.compiler.reshape import pe_waste, reshape_placement, unroll_placement
from repro.compiler.route import route_placement
from repro.ir.builder import KernelBuilder


def body_block(cdfg, name_fragment="body"):
    for block in cdfg.blocks:
        if name_fragment in block.name and block.op_count > 0:
            return block
    raise AssertionError(f"no block matching {name_fragment}")


@pytest.fixture
def mac_block(saxpy_kernel):
    return body_block(saxpy_kernel)


class TestPlaceBlock:
    def test_every_op_mapped_once(self, mac_block, params):
        placement = place_block(mac_block, params)
        op_ids = [n.node_id for n in mac_block.dfg.fu_nodes]
        placement.validate(op_ids)

    def test_ii_at_least_one(self, mac_block, params):
        assert place_block(mac_block, params).ii >= 1

    def test_empty_block(self, params):
        k = KernelBuilder("empty")
        cdfg = k.build()
        placement = place_block(cdfg.blocks[0], params)
        assert placement.op_count == 0 and placement.ii == 1

    def test_empty_region_rejected(self, mac_block, params):
        with pytest.raises(PlacementError):
            place_block(mac_block, params, region=[])

    def test_small_region_folds(self, mac_block, params):
        region = [Coord(0, 0), Coord(0, 1)]
        placement = place_block(mac_block, params, region)
        assert placement.n_pes <= 2
        assert placement.ii >= mac_block.op_count // 2

    def test_nonlinear_ops_on_nonlinear_pes(self, params):
        k = KernelBuilder("nl")
        n = k.param("n")
        k.array("x")
        k.array("y")
        with k.loop("i", 0, n) as i:
            k.store("y", i, k.exp(k.load("x", i)))
        block = body_block(k.build())
        placement = place_block(block, params)
        grid = Grid(params.rows, params.cols)
        nonlinear_pool = list(grid)[-params.nonlinear_pes:]
        from repro.ir.ops import OpClass

        for node in block.dfg.fu_nodes:
            if node.info.op_class is OpClass.NONLINEAR:
                assert placement.assignment[node.node_id] in nonlinear_pool

    def test_nonlinear_without_pool_raises(self, params):
        k = KernelBuilder("nl2")
        k.array("x")
        k.array("y")
        with k.loop("i", 0, 4) as i:
            k.store("y", i, k.log(k.load("x", i)))
        block = body_block(k.build())
        region = [Coord(0, 0), Coord(0, 1)]  # no nonlinear PEs
        with pytest.raises(PlacementError):
            place_block(block, params, region)

    def test_depth_includes_transfers(self, mac_block, params):
        placement = place_block(mac_block, params)
        assert placement.depth_cycles >= (
            mac_block.dfg.critical_path_length()
        )


class TestRoutePlacement:
    def test_all_cross_pe_edges_routed(self, mac_block, params):
        placement = place_block(mac_block, params)
        routing = route_placement(mac_block, placement, params)
        cross = 0
        mapped = set(placement.assignment)
        for node in mac_block.dfg.fu_nodes:
            for operand in node.operands:
                if operand in mapped and (
                    placement.assignment[operand]
                    != placement.assignment[node.node_id]
                ):
                    cross += 1
        assert len(routing.edges) == cross
        assert routing.congestion_ii >= 1


class TestReshape:
    def _placement(self, n_ops: int) -> BBPlacement:
        grid = Grid(4, 4)
        coords = list(grid)
        return BBPlacement(
            block=0,
            assignment={i: coords[i] for i in range(n_ops)},
            ii=1, depth_cycles=8,
        )

    def test_fold_raises_ii(self):
        original = self._placement(8)
        folded = reshape_placement(original, [Coord(0, 0), Coord(0, 1)])
        assert folded.time_extended
        assert folded.ii == 4
        assert folded.n_pes == 2
        assert sorted(folded.assignment) == sorted(original.assignment)

    def test_fold_empty_target_rejected(self):
        with pytest.raises(CompilationError):
            reshape_placement(self._placement(4), [])

    def test_pe_waste_formula(self):
        original = self._placement(8)
        folded = reshape_placement(original, [Coord(0, 0), Coord(0, 1)])
        # PE_remapping * II - PE * Unroll = 2*4 - 8*1 = 0
        assert pe_waste(folded, original) == 0

    def test_unroll_adds_copies(self):
        original = self._placement(4)
        spare = [Coord(3, c) for c in range(4)] + [Coord(2, c) for c in range(4)]
        unrolled = unroll_placement(original, spare)
        assert unrolled is not None
        assert unrolled.unroll == 3  # 8 spare // 4 ops = 2 extra copies
        assert unrolled.op_count == 12

    def test_unroll_returns_none_when_no_room(self):
        original = self._placement(8)
        assert unroll_placement(original, [Coord(0, 0)]) is None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 16), st.integers(1, 16))
    def test_fold_preserves_ops_any_shape(self, n_ops, n_targets):
        original = self._placement(n_ops)
        targets = list(Grid(4, 4))[:n_targets]
        folded = reshape_placement(original, targets)
        assert sorted(folded.assignment) == sorted(original.assignment)
        assert folded.ii >= max(
            original.ii, -(-n_ops // n_targets)
        ) - 1  # allow rounding slack
        assert folded.ii * folded.n_pes >= n_ops


class TestPipelineArithmetic:
    def test_basic_formula(self):
        assert pipeline_cycles(10, ii=1, startup=5, drain=3) == 17

    def test_zero_iterations(self):
        assert pipeline_cycles(0, 1, 5, 3) == 5

    def test_unroll_divides_initiations(self):
        assert pipeline_cycles(10, 1, 0, 0, unroll=2) == 4

    def test_invalid_args(self):
        with pytest.raises(CompilationError):
            pipeline_cycles(-1, 1, 0, 0)
        with pytest.raises(CompilationError):
            pipeline_cycles(1, 0, 0, 0)

    def test_serial(self):
        assert serial_cycles(4, depth=5, gap=2) == 26
        assert serial_cycles(0, 5, 2) == 0

    def test_shape_object(self):
        shape = PipelineShape(ii=2, startup=4, drain=6)
        assert shape.cycles(5) == 4 + 8 + 6

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 1000), st.integers(1, 8), st.integers(0, 20),
           st.integers(0, 20), st.integers(1, 4))
    def test_pipeline_beats_serial(self, iters, ii, startup, drain, unroll):
        pipelined = pipeline_cycles(iters, ii, startup, drain, unroll)
        serial = serial_cycles(iters, depth=max(drain, ii), gap=startup)
        assert pipelined <= serial + startup + drain
