"""Integration tests: every table/figure experiment runs and reproduces the
paper's *shape* (orderings and coarse bands) at tiny scale."""

import pytest

from repro.experiments import (
    fig11_pe_models,
    fig12_control_network,
    fig13_network_scaling,
    fig14_agile,
    fig15_utilization,
    fig16_balance,
    fig17_sota,
    report,
    table4_area,
    table6_network_area,
)

SCALE = "tiny"


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_pe_models.run(SCALE)

    def test_ten_intensive_rows(self, result):
        assert len(result.rows) == 10

    def test_marionette_wins_geomean(self, result):
        assert result.summary["geomean speedup vs von Neumann PE"] > 1.05
        assert result.summary["geomean speedup vs dataflow PE"] > 1.1

    def test_branch_share_axis_is_meaningful(self, result):
        shares = {r["kernel"]: r["ops_under_branch_pct"] for r in result.rows}
        # Branch-free GEMM sits at zero; branch-under kernels are nonzero
        # (HT's whole theta loop is under the pixel threshold branch).
        assert shares["GEMM"] == 0.0
        for kernel in ("MS", "HT", "CRC", "ADPCM"):
            assert shares[kernel] > 0.0

    def test_renders(self, result):
        table = result.to_table()
        assert "Figure 11" in table and "MS" in table


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_control_network.run(SCALE)

    def test_network_never_hurts(self, result):
        assert all(r["with_control_network"] >= 1.0 for r in result.rows)

    def test_geomean_band(self, result):
        assert 1.02 <= result.summary["geomean control-network speedup"] <= 1.6

    def test_partially_pipelined_kernels_gain_most(self, result):
        gains = {r["kernel"]: r["with_control_network"] for r in result.rows}
        exposed = max(gains["CRC"], gains["ADPCM"], gains["MS"])
        hidden = min(gains["SCD"], gains["NW"])
        assert exposed > hidden


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_network_scaling.run()

    def test_grid_of_points(self, result):
        assert len(result.rows) == 27  # 9 stage counts x 3 frequencies

    def test_delay_monotonic_per_frequency(self, result):
        by_freq = {}
        for row in result.rows:
            by_freq.setdefault(row["frequency_ghz"], []).append(
                row["network_delay_ns"]
            )
        for delays in by_freq.values():
            assert delays == sorted(delays)

    def test_prototype_is_single_cycle(self, result):
        assert result.summary["prototype latency cycles @500MHz"] == 1.0


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_agile.run(SCALE)

    def test_agile_never_hurts(self, result):
        assert all(r["with_agile"] >= 0.999 for r in result.rows)

    def test_geomean_band(self, result):
        assert 1.2 <= result.summary["geomean Agile speedup"] <= 3.5

    def test_regular_kernels_gain_most(self, result):
        gains = {r["kernel"]: r["with_agile"] for r in result.rows}
        assert max(gains["HT"], gains["GEMM"], gains["VI"]) > 1.8
        assert gains["ADPCM"] == pytest.approx(1.0, abs=0.05)


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_utilization.run(SCALE)

    def test_seven_nested_kernels(self, result):
        assert len(result.rows) == 7

    def test_gains_at_least_neutral(self, result):
        for row in result.rows:
            assert row["outer_util_gain"] >= 0.99
            assert row["pipe_util_gain"] >= 0.99

    def test_mean_gains_positive(self, result):
        assert result.summary["mean outer-BB utilization gain"] > 1.5
        assert result.summary["mean pipeline utilization gain"] > 1.05


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16_balance.run(SCALE)

    def test_paper_grouping(self, result):
        dominant = {r["kernel"]: r["dominant"] for r in result.rows}
        # Partially-pipelined kernels: the network matters, Agile doesn't.
        for kernel in ("CRC", "ADPCM"):
            assert dominant[kernel] == "network", dominant
        # Regular imperfect nests: Agile dominates.
        for kernel in ("VI", "HT", "SCD", "GEMM"):
            assert dominant[kernel] == "pipeline", dominant


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_sota.run(SCALE)

    def test_thirteen_rows(self, result):
        assert len(result.rows) == 13

    def test_marionette_wins_every_rival_geomean(self, result):
        for rival in ("softbrain", "tia", "revel", "riptide"):
            assert result.summary[f"geomean speedup vs {rival}"] > 1.1

    def test_revel_is_closest(self, result):
        gaps = {
            rival: result.summary[f"geomean speedup vs {rival}"]
            for rival in ("softbrain", "tia", "revel", "riptide")
        }
        assert gaps["revel"] == min(gaps.values())

    def test_non_intensive_parity(self, result):
        assert 0.7 <= result.summary[
            "geomean vs best rival (non-intensive)"
        ] <= 1.4

    def test_marionette_fastest_on_every_intensive_kernel(self, result):
        for row in result.rows:
            if row["group"] != "intensive":
                continue
            rivals = [row[r] for r in ("softbrain", "tia", "revel",
                                       "riptide")]
            assert row["marionette"] >= max(rivals) * 0.95, row["kernel"]


class TestTables:
    def test_table4_totals(self):
        result = table4_area.run()
        assert result.summary["total area mm^2"] == pytest.approx(
            0.151, abs=0.005
        )
        assert result.summary["total power mW"] == pytest.approx(
            152.09, abs=1.0
        )

    def test_table6_ratio(self):
        result = table6_network_area.run()
        assert result.summary["marionette network ratio pct"] < 20.0


class TestReport:
    def test_full_report_renders(self):
        text = report.render_report(SCALE)
        for fragment in ("Figure 11", "Figure 17", "Table 4", "Table 6"):
            assert fragment in text
        assert len(text) > 2000
