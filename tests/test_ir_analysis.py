"""Tests for CDFG analyses: profiles, loop dynamics, branch metrics."""

import numpy as np
import pytest

from repro.ir import analysis
from repro.ir.interp import Interpreter
from repro.workloads import get_workload


def _run(cdfg, memory, params):
    return Interpreter(cdfg).run(memory, params)


class TestLoopNest:
    def test_imperfect_detection(self, imperfect_kernel, saxpy_kernel):
        assert imperfect_kernel.is_imperfect()
        assert not saxpy_kernel.is_imperfect()

    def test_nest_depths(self, imperfect_kernel):
        assert imperfect_kernel.max_loop_depth() == 2
        inner = imperfect_kernel.innermost_loops()
        assert len(inner) == 1
        assert inner[0].depth == 2

    def test_loop_of_block(self, imperfect_kernel):
        nests = imperfect_kernel.loop_nests()
        inner = imperfect_kernel.innermost_loops()[0]
        for bid in inner.own_blocks(nests):
            found = imperfect_kernel.loop_of_block(bid)
            assert found is not None and found.header == inner.header

    def test_levels_inner_to_outer(self, imperfect_kernel):
        levels = imperfect_kernel.levels_inner_to_outer()
        assert [lvl[0].depth for lvl in levels] == [2, 1]


class TestBranchStructure:
    def test_branch_blocks(self, branchy_kernel, saxpy_kernel):
        assert len(branchy_kernel.branch_blocks()) == 1
        assert saxpy_kernel.branch_blocks() == []

    def test_under_branch_blocks_are_the_arms(self, branchy_kernel):
        under = branchy_kernel.under_branch_blocks()
        names = {branchy_kernel.block(b).name for b in under}
        assert any("then" in n for n in names)
        assert any("else" in n for n in names)

    def test_branch_nesting_depth(self):
        ms = get_workload("ms").instance("tiny")
        assert analysis.branch_nesting_depth(ms.cdfg) >= 1
        adpcm = get_workload("adpcm").instance("tiny")
        assert analysis.branch_nesting_depth(adpcm.cdfg) >= 1


class TestLoopDynamics:
    def test_entries_and_iterations(self, imperfect_kernel, spmv_inputs):
        memory, params, _ = spmv_inputs
        result = _run(imperfect_kernel, memory, params)
        dynamics = analysis.loop_dynamics(imperfect_kernel, result.trace)
        by_depth = {d.depth: d for d in dynamics.values()}
        outer = by_depth[1]
        inner = by_depth[2]
        assert outer.entries == 1
        assert outer.total_iterations == 4       # four rows
        assert inner.entries == 4                # entered once per row
        assert inner.total_iterations == 9       # nnz
        assert inner.mean_trip_count == pytest.approx(9 / 4)

    def test_zero_entry_loop(self):
        from repro.ir.builder import KernelBuilder

        k = KernelBuilder("dead_loop")
        n = k.param("n")
        k.array("o")
        with k.branch(k.const(0).eq(1)):
            with k.loop("i", 0, n) as i:
                k.store("o", i, i)
        cdfg = k.build()
        result = _run(cdfg, {"o": np.zeros(4)}, {"n": 4})
        dynamics = analysis.loop_dynamics(cdfg, result.trace)
        assert all(d.entries == 0 for d in dynamics.values())
        assert all(d.mean_trip_count == 0.0 for d in dynamics.values())


class TestProfile:
    def test_ops_under_branch_fraction(self, branchy_kernel):
        result = _run(
            branchy_kernel,
            {"a": np.arange(8), "b": np.arange(8)[::-1].copy(),
             "o": np.zeros(8)},
            {"n": 8},
        )
        fraction = analysis.ops_under_branch_fraction(
            branchy_kernel, result.trace
        )
        assert 0.0 < fraction < 1.0

    def test_profile_fields(self, imperfect_kernel, spmv_inputs):
        memory, params, _ = spmv_inputs
        result = _run(imperfect_kernel, memory, params)
        profile = analysis.profile(imperfect_kernel, result.trace)
        assert profile.kernel == "spmv"
        assert profile.imperfect
        assert profile.max_loop_depth == 2
        assert profile.dynamic_ops == result.trace.dynamic_op_count(
            imperfect_kernel
        )

    def test_table1_rows_match_paper_forms(self):
        expectations = {
            "ms": ("branches", "Imperfect nested"),
            "gemm": ("N/A", "Imperfect nested"),
            "adpcm": ("branches", "Single loop"),
        }
        for name, (branch_part, loop_part) in expectations.items():
            instance = get_workload(name).instance("tiny")
            result = instance.run()
            profile = analysis.profile(instance.cdfg, result.trace)
            row = profile.table1_row()
            assert branch_part.lower() in row["intensive_branch"].lower() \
                or branch_part == "N/A" and row["intensive_branch"] == "N/A"
            assert loop_part.lower() in row["intensive_loop"].lower()

    def test_serial_loops_counted(self):
        scd = get_workload("scd").instance("tiny")
        assert analysis.serial_loop_count(scd.cdfg) >= 2
