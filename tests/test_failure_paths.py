"""Failure injection and error-path tests across the stack."""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.arch.params import ArchParams
from repro.compiler.config_gen import generate_program
from repro.ir.builder import KernelBuilder
from repro.sim.array import ArraySimulator
from repro.workloads import get_workload


def _tiny_program(params):
    k = KernelBuilder("tiny")
    n = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, n) as i:
        k.store("o", i, k.load("x", i) + 1)
    return generate_program(
        k.build(), params, param_values={"n": 4},
        array_lengths={"x": 4, "o": 4},
    )


class TestArraySimulatorErrors:
    def test_unknown_array_load(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        with pytest.raises(SimulationError, match="not in program table"):
            sim.load_array("nonexistent", [1, 2, 3])

    def test_oversized_array_image(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        with pytest.raises(SimulationError, match="exceed"):
            sim.load_array("x", list(range(99)))

    def test_array_out_unknown_name(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(halt_messages=999)
        with pytest.raises(SimulationError) as excinfo:
            result.array_out(program, "nope")
        # The error names the array and lists what *is* declared.
        message = str(excinfo.value)
        assert "'nope'" in message
        assert "available" in message
        assert "x" in message and "o" in message

    def test_max_cycles_cutoff(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(max_cycles=3, halt_messages=1)
        assert result.cycles == 3
        assert not result.halted

    def test_quiescence_without_halt_message(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [5, 6, 7, 8])
        result = sim.run(halt_messages=999)  # never reached
        assert not result.halted              # quiesced instead
        assert list(result.array_out(program, "o")) == [6, 7, 8, 9]

    def test_small_control_fifo_still_correct(self):
        params = ArchParams(control_fifo_depth=1)
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(halt_messages=999)
        assert list(result.array_out(program, "o")) == [2, 3, 4, 5]


class TestWorkloadCheckCatchesCorruption:
    def test_corrupted_expected_output_detected(self):
        instance = get_workload("gray").instance("tiny")
        instance.expected["gray"] = instance.expected["gray"] + 1
        with pytest.raises(ReproError, match="mismatches reference"):
            instance.check()

    def test_corrupted_float_output_detected(self):
        instance = get_workload("sigmoid").instance("tiny")
        instance.expected["y"] = instance.expected["y"] * 1.5
        with pytest.raises(ReproError, match="mismatches reference"):
            instance.check()


class TestModelEdgeCases:
    def test_empty_kernel_models_do_not_crash(self):
        from repro.baselines import MarionetteModel
        from repro.baselines.base import KernelInstance
        from repro.ir.interp import Interpreter

        k = KernelBuilder("empty")
        cdfg = k.build()
        result = Interpreter(cdfg).run({}, {})
        kernel = KernelInstance(cdfg, result.trace)
        model_result = MarionetteModel(ArchParams()).simulate(kernel)
        assert model_result.cycles >= 1
        assert model_result.breakdowns == []

    def test_speedup_over(self):
        from repro.baselines import IdealModel, VonNeumannModel
        from repro.baselines.base import KernelInstance

        instance = get_workload("gemm").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        params = ArchParams()
        fast = IdealModel(params).simulate(kernel)
        slow = VonNeumannModel(params).simulate(kernel)
        assert fast.speedup_over(slow) >= 1.0
        assert slow.speedup_over(fast) <= 1.0
