"""Failure injection and error-path tests across the stack."""

import numpy as np
import pytest

from repro.errors import ReproError, SimulationError
from repro.arch.params import ArchParams
from repro.compiler.config_gen import generate_program
from repro.ir.builder import KernelBuilder
from repro.sim.array import ArraySimulator
from repro.workloads import get_workload


def _tiny_program(params):
    k = KernelBuilder("tiny")
    n = k.param("n")
    k.array("x")
    k.array("o")
    with k.loop("i", 0, n) as i:
        k.store("o", i, k.load("x", i) + 1)
    return generate_program(
        k.build(), params, param_values={"n": 4},
        array_lengths={"x": 4, "o": 4},
    )


class TestArraySimulatorErrors:
    def test_unknown_array_load(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        with pytest.raises(SimulationError, match="not in program table"):
            sim.load_array("nonexistent", [1, 2, 3])

    def test_oversized_array_image(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        with pytest.raises(SimulationError, match="exceed"):
            sim.load_array("x", list(range(99)))

    def test_array_out_unknown_name(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(halt_messages=999)
        with pytest.raises(SimulationError) as excinfo:
            result.array_out(program, "nope")
        # The error names the array and lists what *is* declared.
        message = str(excinfo.value)
        assert "'nope'" in message
        assert "available" in message
        assert "x" in message and "o" in message

    def test_max_cycles_cutoff(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(max_cycles=3, halt_messages=1)
        assert result.cycles == 3
        assert not result.halted

    def test_quiescence_without_halt_message(self, params):
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [5, 6, 7, 8])
        result = sim.run(halt_messages=999)  # never reached
        assert not result.halted              # quiesced instead
        assert list(result.array_out(program, "o")) == [6, 7, 8, 9]

    def test_small_control_fifo_still_correct(self):
        params = ArchParams(control_fifo_depth=1)
        program = _tiny_program(params)
        sim = ArraySimulator(params, program)
        sim.load_array("x", [1, 2, 3, 4])
        result = sim.run(halt_messages=999)
        assert list(result.array_out(program, "o")) == [2, 3, 4, 5]


class TestWorkloadCheckCatchesCorruption:
    def test_corrupted_expected_output_detected(self):
        instance = get_workload("gray").instance("tiny")
        instance.expected["gray"] = instance.expected["gray"] + 1
        with pytest.raises(ReproError, match="mismatches reference"):
            instance.check()

    def test_corrupted_float_output_detected(self):
        instance = get_workload("sigmoid").instance("tiny")
        instance.expected["y"] = instance.expected["y"] * 1.5
        with pytest.raises(ReproError, match="mismatches reference"):
            instance.check()


class TestModelEdgeCases:
    def test_empty_kernel_models_do_not_crash(self):
        from repro.baselines import MarionetteModel
        from repro.baselines.base import KernelInstance
        from repro.ir.interp import Interpreter

        k = KernelBuilder("empty")
        cdfg = k.build()
        result = Interpreter(cdfg).run({}, {})
        kernel = KernelInstance(cdfg, result.trace)
        model_result = MarionetteModel(ArchParams()).simulate(kernel)
        assert model_result.cycles >= 1
        assert model_result.breakdowns == []

    def test_speedup_over(self):
        from repro.baselines import IdealModel, VonNeumannModel
        from repro.baselines.base import KernelInstance

        instance = get_workload("gemm").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        params = ArchParams()
        fast = IdealModel(params).simulate(kernel)
        slow = VonNeumannModel(params).simulate(kernel)
        assert fast.speedup_over(slow) >= 1.0
        assert slow.speedup_over(fast) <= 1.0


# ----------------------------------------------------------------------
# Coordinator crash recovery (kill -9 a durable serve, replay the
# journal, drive the lease/ack protocol by hand across the boundary)
# ----------------------------------------------------------------------
class TestCoordinatorCrashRecovery:
    @staticmethod
    def _spawn_serve(port, state_dir):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--state-dir", str(state_dir)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    @staticmethod
    def _wait_healthy(url, timeout=30.0):
        import time

        from repro.engine.distributed.backend import HTTPBackend
        from repro.errors import DistributedError

        deadline = time.monotonic() + timeout
        while True:
            try:
                return HTTPBackend(url).health()
            except DistributedError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def test_kill_dash_nine_mid_job_replays_to_a_live_table(
            self, tmp_path):
        """The full crash story over real HTTP and a real SIGKILL.

        Acked results survive; the half-done job's remaining task
        re-leases on the restarted server; the dead process's lease
        token bounces as stale — exactly-once across the boundary.
        """
        import contextlib
        import signal
        import socket

        from repro.arch.params import DEFAULT_PARAMS
        from repro.engine import ModelSpec, RunSpec
        from repro.engine.distributed.worker import CoordinatorClient

        specs = [
            RunSpec("gemm", "tiny", 0, ModelSpec.make(model),
                    DEFAULT_PARAMS).to_payload()
            for model in ("von_neumann", "marionette")
        ]
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        url = f"http://127.0.0.1:{port}"
        proc = self._spawn_serve(port, tmp_path)
        try:
            self._wait_healthy(url)
            client = CoordinatorClient(url)
            job = client.submit(specs, scale="tiny", seed=0)["job"]
            # Hand-drive the protocol: trace done, one sim done, one
            # sim leased-but-never-acked when the server dies.
            trace = client.lease("w")["tasks"][0]
            assert trace["task"]["kind"] == "trace"
            assert client.ack(trace["id"], trace["lease"],
                              computed=True)
            first_sim = client.lease("w")["tasks"][0]
            assert client.ack(first_sim["id"], first_sim["lease"],
                              result={"cycles": 41})
            doomed = client.lease("w")["tasks"][0]

            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc = self._spawn_serve(port, tmp_path)
            self._wait_healthy(url)

            # Acked results are still pollable at their old cursor.
            batch = client.results_since(job, 0)
            assert batch["results"] \
                == [[first_sim["task"]["index"], {"cycles": 41}]]
            assert not batch["done"]
            # The dead process's lease was not restored: its token is
            # stale, and the task re-leases with a fresh one.
            assert not client.ack(doomed["id"], doomed["lease"],
                                  result={"cycles": 666})
            retry = client.lease("w2")["tasks"][0]
            assert retry["id"] == doomed["id"]
            assert retry["lease"] != doomed["lease"]
            assert client.ack(retry["id"], retry["lease"],
                              result={"cycles": 42})
            final = client.results_since(job, 0)
            assert final["done"]
            assert sorted(
                (index, payload["cycles"])
                for index, payload in final["results"]
            ) == [(0, 41), (1, 42)] or sorted(
                (index, payload["cycles"])
                for index, payload in final["results"]
            ) == [(0, 42), (1, 41)]
        finally:
            with contextlib.suppress(ProcessLookupError):
                proc.kill()
            proc.wait(timeout=30)

    def test_journal_compaction_under_concurrent_submits(self,
                                                         tmp_path):
        """Many threads submit and ack against a tiny journal budget:
        compaction (snapshot + truncate) must never lose a transition,
        and the journal must stay bounded by the table, not history."""
        import threading

        from repro.arch.params import DEFAULT_PARAMS
        from repro.engine import ModelSpec, RunSpec
        from repro.engine.distributed.coordinator import Coordinator
        from repro.engine.distributed.journal import JobJournal

        spec = RunSpec("gemm", "tiny", 0,
                       ModelSpec.make("von_neumann"),
                       DEFAULT_PARAMS).to_payload()
        journal = JobJournal(tmp_path, max_bytes=2048)
        coordinator = Coordinator(journal=journal)
        jobs, errors = [], []
        lock = threading.Lock()

        def driver(worker):
            try:
                for _round in range(5):
                    job = coordinator.submit([dict(spec)],
                                             scale="tiny",
                                             seed=0)["job"]
                    with lock:
                        jobs.append(job)
                    while True:
                        grant = coordinator.lease(worker)
                        if grant == {"wait": True}:
                            break
                        if grant["task"]["kind"] == "trace":
                            coordinator.ack(grant["id"],
                                            grant["lease"],
                                            computed=True)
                        else:
                            coordinator.ack(grant["id"],
                                            grant["lease"],
                                            result={"cycles": 9})
            except Exception as error:   # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=driver, args=(f"w{n}",))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        # Workers race for leases, so any driver may finish any job;
        # what matters is that every job completed and survives replay.
        resumed, summary = Coordinator.resume(journal)
        assert summary["jobs"] == len(jobs) == 20
        assert summary["active"] == 0
        for job in jobs:
            batch = resumed.results_since(job, 0)
            assert batch["done"] and not batch["failed"]
            assert [index for index, _payload in batch["results"]] \
                == [0]
        # Bounded: one compacted snapshot, not 20 jobs of history.
        assert journal.path.stat().st_size < 10 * 2048
