"""Unit + property tests for the functional interpreter.

The compiled (per-block template JIT) and walking (op-by-op) engines are
cross-checked on randomly generated kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterpreterError
from repro.ir.builder import KernelBuilder
from repro.ir.interp import Interpreter


class TestBasics:
    def test_missing_param_raises(self, saxpy_kernel):
        with pytest.raises(InterpreterError, match="missing parameters"):
            Interpreter(saxpy_kernel).run(
                {"x": np.zeros(4), "y": np.zeros(4)}
            )

    def test_missing_array_raises(self, saxpy_kernel):
        with pytest.raises(InterpreterError, match="missing array"):
            Interpreter(saxpy_kernel).run({"x": np.zeros(4)}, {"n": 4})

    def test_non_1d_array_rejected(self, saxpy_kernel):
        with pytest.raises(InterpreterError, match="1-D"):
            Interpreter(saxpy_kernel).run(
                {"x": np.zeros((2, 2)), "y": np.zeros(4)}, {"n": 4}
            )

    def test_memory_is_copied(self, saxpy_kernel):
        x = np.ones(4, dtype=np.int64)
        y = np.ones(4, dtype=np.int64)
        Interpreter(saxpy_kernel).run({"x": x, "y": y}, {"n": 4})
        assert list(y) == [1, 1, 1, 1]  # caller's array untouched

    def test_out_of_bounds_load(self, saxpy_kernel):
        with pytest.raises(InterpreterError, match="out-of-bounds"):
            Interpreter(saxpy_kernel).run(
                {"x": np.zeros(2), "y": np.zeros(2)}, {"n": 5}
            )

    def test_max_steps_guard(self):
        k = KernelBuilder("spin")
        k.set("x", 1)
        with k.while_(lambda: k.get("x") > 0):
            k.set("x", k.get("x") + 1)
        with pytest.raises(InterpreterError, match="exceeded"):
            Interpreter(k.build()).run({}, max_steps=100)

    def test_unknown_engine(self, saxpy_kernel):
        with pytest.raises(InterpreterError):
            Interpreter(saxpy_kernel, engine="quantum")

    def test_result_exposes_env_and_steps(self, saxpy_kernel):
        result = Interpreter(saxpy_kernel).run(
            {"x": np.arange(3), "y": np.zeros(3)}, {"n": 3}
        )
        assert result.env["i"] == 3
        assert result.steps == result.trace.total_block_execs


class TestTrace:
    def test_trace_counts_match(self, imperfect_kernel, spmv_inputs):
        memory, params, expected = spmv_inputs
        result = Interpreter(imperfect_kernel).run(memory, params)
        result.trace.validate()
        assert np.array_equal(result.array("out"), expected)
        # Outer loop body executes once per row.
        bodies = [
            b.block_id for b in imperfect_kernel.blocks
            if b.name == "loop_i1_body"
        ]
        assert result.trace.execs_of(bodies[0]) == 4

    def test_trace_disabled(self, saxpy_kernel):
        result = Interpreter(saxpy_kernel).run(
            {"x": np.zeros(2), "y": np.zeros(2)}, {"n": 2},
            collect_trace=False,
        )
        assert result.trace.runs == []

    def test_edge_counts_sum_to_transitions(self, branchy_kernel):
        result = Interpreter(branchy_kernel).run(
            {"a": np.arange(8), "b": np.arange(8)[::-1].copy(),
             "o": np.zeros(8)}, {"n": 8},
        )
        trace = result.trace
        assert sum(trace.edge_counts.values()) == trace.transitions()


@st.composite
def random_kernel_and_memory(draw):
    """A random straight-line + loop + branch kernel over small arrays."""
    n = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**16))
    k = KernelBuilder("fuzz")
    size = k.param("n")
    k.array("a")
    k.array("o")
    ops = draw(st.lists(
        st.sampled_from(["add", "mul", "sub", "min", "branch"]),
        min_size=1, max_size=5,
    ))
    with k.loop("i", 0, size) as i:
        value = k.load("a", i)
        for op in ops:
            if op == "add":
                value = value + 3
            elif op == "mul":
                value = value * 2
            elif op == "sub":
                value = value - 1
            elif op == "min":
                value = k.minimum(value, 100)
            else:
                with k.branch(value > 10) as br:
                    k.set("t", value - 10)
                with br.orelse():
                    k.set("t", value)
                value = k.get("t")
        k.store("o", i, value)
    cdfg = k.build()
    rng = np.random.default_rng(seed)
    memory = {
        "a": rng.integers(-50, 50, n),
        "o": np.zeros(n, dtype=np.int64),
    }
    return cdfg, memory, {"n": n}


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(random_kernel_and_memory())
    def test_compiled_matches_walking(self, case):
        cdfg, memory, params = case
        compiled = Interpreter(cdfg, engine="compiled").run(memory, params)
        walking = Interpreter(cdfg, engine="walking").run(memory, params)
        assert np.array_equal(compiled.array("o"), walking.array("o"))
        assert compiled.trace.exec_counts == walking.trace.exec_counts
        assert compiled.env == walking.env
