"""Batch-granular dispatch: grouped cohorts over the wire.

A coordinator task may carry a whole grouped cohort (``group=True`` on
submit): the grouping law partitions the job's specs exactly like
:meth:`Engine.execute` does locally, each group travels as one
``<job>:gN`` task blocked on *every* trace it needs, workers execute
the group through one ``engine.execute`` call, and the ack fans the
per-spec payloads back out under the original indices.  Everything a
driver can observe — result payloads, delivery order guarantees,
exactly-once semantics, journal replay, assembled reports — must be
byte-identical to ungrouped dispatch and to a local
``Engine(grouping=False)`` run.
"""

from __future__ import annotations

import threading

import pytest

from repro.arch.params import DEFAULT_PARAMS, ArchParams
from repro.cli import main
from repro.engine import Engine, MemoryBackend, ModelSpec, RunSpec
from repro.engine.distributed.coordinator import Coordinator
from repro.engine.distributed.journal import JobJournal
from repro.engine.distributed.server import DistributedServer
from repro.engine.distributed.worker import (
    CoordinatorClient,
    dispatch_job,
    work_loop,
)
from repro.errors import DistributedError

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")


def _specs():
    return [
        RunSpec(name, "tiny", seed, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc")
        for seed in (0, 1)
        for model in (VN, MARIONETTE)
    ]


def _payloads(specs):
    return [spec.to_payload() for spec in specs]


def _drain(coordinator, job_id, *, worker="w"):
    """Lease and ack every task, returning delivered (index, payload)
    pairs; grouped sim tasks are executed as fake per-spec results."""
    landed = []
    cursor = 0
    while True:
        batch = coordinator.results_since(job_id, cursor)
        landed.extend(tuple(pair) for pair in batch["results"])
        cursor = batch["completed"]
        if batch["done"] or batch["failed"]:
            return landed, batch
        grant = coordinator.lease(worker)
        if grant.get("wait"):
            continue
        task = grant["task"]
        if task["kind"] == "trace":
            coordinator.ack(grant["id"], grant["lease"], computed=True)
        elif "specs" in task:
            coordinator.ack(grant["id"], grant["lease"], result={
                "results": [{"cycles": 100 + task["indices"][i]}
                            for i in range(len(task["specs"]))],
            })
        else:
            coordinator.ack(grant["id"], grant["lease"],
                            result={"cycles": 100 + task["index"]})


# ----------------------------------------------------------------------
# Coordinator semantics of grouped jobs
# ----------------------------------------------------------------------
class TestGroupedCoordinator:
    @staticmethod
    def _sim_grants(coordinator):
        """Ack every trace, then collect the sim-task grants."""
        grants = []
        while True:
            grant = coordinator.lease("w")
            if grant.get("wait"):
                break
            if grant["task"]["kind"] == "trace":
                coordinator.ack(grant["id"], grant["lease"],
                                computed=True)
            else:
                grants.append(grant)
        return grants

    def test_grouped_submit_follows_the_grouping_law(self):
        coordinator = Coordinator()
        receipt = coordinator.submit(_payloads(_specs()), scale="tiny",
                                     seed=0, group=True)
        # The receipt keeps the historical per-spec counts ...
        assert receipt["traces"] == 4       # (workload, seed) pairs
        assert receipt["sims"] == 8
        # ... but the work divides into one task per grouping-law
        # batch: 8 specs over 2 workloads x 1 geometry -> 2 groups.
        grants = self._sim_grants(coordinator)
        assert len(grants) == 2
        assert sorted(index for grant in grants
                      for index in grant["task"]["indices"]) == \
            list(range(8))

    def test_group_size_seals_batches(self):
        coordinator = Coordinator()
        coordinator.submit(_payloads(_specs()), scale="tiny",
                           seed=0, group=True, group_size=3)
        # Each workload's 4 members split 3+1.
        grants = self._sim_grants(coordinator)
        assert sorted(len(grant["task"]["specs"])
                      for grant in grants) == [1, 1, 3, 3]

    def test_group_size_must_be_positive(self):
        coordinator = Coordinator()
        with pytest.raises(DistributedError, match="group"):
            coordinator.submit(_payloads(_specs()[:2]), scale="tiny",
                               seed=0, group=True, group_size=0)

    def test_grouped_task_waits_for_every_needed_trace(self):
        """A group spanning two seeds needs two traces; it must stay
        blocked until the *last* one acks."""
        specs = [RunSpec("gemm", "tiny", seed, VN, DEFAULT_PARAMS)
                 for seed in (0, 1)]
        coordinator = Coordinator()
        coordinator.submit(_payloads(specs), scale="tiny", seed=0,
                           group=True)
        first = coordinator.lease("w")
        assert first["task"]["kind"] == "trace"
        second = coordinator.lease("w")
        assert second["task"]["kind"] == "trace"
        coordinator.ack(first["id"], first["lease"], computed=True)
        # One trace down, one to go: the grouped sim is still blocked.
        assert coordinator.lease("w") == {"wait": True}
        coordinator.ack(second["id"], second["lease"], computed=True)
        grant = coordinator.lease("w")
        assert grant["task"]["kind"] == "sim"
        assert grant["task"]["indices"] == [0, 1]
        assert [spec["seed"] for spec in grant["task"]["specs"]] == [0, 1]

    def test_grouped_results_fan_out_per_spec(self):
        coordinator = Coordinator()
        receipt = coordinator.submit(_payloads(_specs()), scale="tiny",
                                     seed=0, group=True)
        landed, batch = _drain(coordinator, receipt["job"])
        assert batch["done"] and not batch["failed"]
        assert sorted(index for index, _payload in landed) == \
            list(range(8))
        for index, payload in landed:
            assert payload == {"cycles": 100 + index}

    def test_geometry_differences_split_grouped_tasks(self):
        specs = [RunSpec("gemm", "tiny", 0, VN, DEFAULT_PARAMS),
                 RunSpec("gemm", "tiny", 0, VN,
                         ArchParams().scaled(8, 8))]
        coordinator = Coordinator()
        receipt = coordinator.submit(_payloads(specs), scale="tiny",
                                     seed=0, group=True)
        assert receipt["sims"] == 2

    def test_ungrouped_submit_shape_is_unchanged(self):
        """Protocol compatibility: without group=True the task ids,
        payload shapes, and receipt are exactly the historical ones."""
        coordinator = Coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:2]),
                                     scale="tiny", seed=0)
        assert receipt["sims"] == 2
        trace = coordinator.lease("w")
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        grant = coordinator.lease("w")
        assert grant["id"].rsplit(":", 1)[1].startswith("s")
        assert "spec" in grant["task"]
        assert "specs" not in grant["task"]
        assert "indices" not in grant["task"]


# ----------------------------------------------------------------------
# Durability: grouped jobs replay from the journal
# ----------------------------------------------------------------------
class TestGroupedJournalReplay:
    def test_grouped_job_survives_a_restart(self, tmp_path):
        coordinator = Coordinator(journal=JobJournal(tmp_path))
        receipt = coordinator.submit(_payloads(_specs()), scale="tiny",
                                     seed=0, group=True, group_size=3)
        # Ack every trace plus one grouped sim, then "crash".
        done_one_group = False
        while not done_one_group:
            grant = coordinator.lease("w")
            if grant.get("wait"):
                break
            task = grant["task"]
            if task["kind"] == "trace":
                coordinator.ack(grant["id"], grant["lease"],
                                computed=True)
            else:
                coordinator.ack(grant["id"], grant["lease"], result={
                    "results": [{"cycles": 100 + index}
                                for index in task["indices"]],
                })
                done_one_group = True

        resumed, summary = Coordinator.resume(JobJournal(tmp_path))
        assert summary["jobs"] == 1
        landed, batch = _drain(resumed, receipt["job"])
        assert batch["done"] and not batch["failed"]
        assert sorted(index for index, _payload in landed) == \
            list(range(8))
        for index, payload in landed:
            assert payload == {"cycles": 100 + index}


# ----------------------------------------------------------------------
# End-to-end byte-identity through real workers
# ----------------------------------------------------------------------
@pytest.fixture()
def server():
    instance = DistributedServer(
        MemoryBackend(), Coordinator(lease_timeout=30.0)
    ).start()
    yield instance
    instance.stop()


def _fleet(url, count=2):
    workers = [
        threading.Thread(
            target=work_loop, args=(url,),
            kwargs={"poll": 0.05, "max_idle": 30.0,
                    "worker_id": f"fleet-{n}"},
        )
        for n in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


class TestBatchDispatchEndToEnd:
    def test_grouped_payloads_match_local_ungrouped_engine(self, server):
        """The acceptance wall: batch-granular dispatched results are
        byte-identical, spec for spec, to Engine(grouping=False)."""
        specs = _specs()
        local = Engine(grouping=False)
        reference = [run.result.to_payload()
                     for run in local.execute(specs)]

        workers = _fleet(server.url)
        client = CoordinatorClient(server.url)
        try:
            landed = dict(dispatch_job(
                client, _payloads(specs), scale="tiny", seed=0,
                poll=0.02, group=True,
            ))
        finally:
            client.shutdown()
            for worker in workers:
                worker.join(timeout=30.0)
        assert sorted(landed) == list(range(len(specs)))
        assert [landed[index] for index in range(len(specs))] == \
            reference

    def test_group_size_one_equals_ungrouped_dispatch(self, server):
        specs = _specs()[:4]
        local = Engine(grouping=False)
        reference = [run.result.to_payload()
                     for run in local.execute(specs)]
        workers = _fleet(server.url, count=1)
        client = CoordinatorClient(server.url)
        try:
            grouped = dict(dispatch_job(
                client, _payloads(specs), scale="tiny", seed=0,
                poll=0.02, group=True, group_size=1,
            ))
            plain = dict(dispatch_job(
                client, _payloads(specs), scale="tiny", seed=0,
                poll=0.02,
            ))
        finally:
            client.shutdown()
            for worker in workers:
                worker.join(timeout=30.0)
        assert [grouped[i] for i in range(len(specs))] == reference
        assert [plain[i] for i in range(len(specs))] == reference

    def test_dispatched_bench_report_is_byte_identical(self, capsys,
                                                       server):
        """`repro bench --dispatch` groups by default now; the report
        must stay byte-identical to a local run, grouped or not."""
        assert main(["bench", "--scale", "tiny",
                     "--format", "json"]) == 0
        local = capsys.readouterr().out
        workers = _fleet(server.url, count=1)
        client = CoordinatorClient(server.url)
        try:
            assert main(["bench", "--scale", "tiny", "--format", "json",
                         "--dispatch", server.url]) == 0
            grouped = capsys.readouterr()
            assert main(["bench", "--scale", "tiny", "--format", "json",
                         "--no-group", "--dispatch", server.url]) == 0
            ungrouped = capsys.readouterr()
            assert main(["bench", "--scale", "tiny", "--format", "json",
                         "--group-size", "2",
                         "--dispatch", server.url]) == 0
            sealed = capsys.readouterr()
        finally:
            client.shutdown()
            for worker in workers:
                worker.join(timeout=30.0)
        assert grouped.out == local
        assert ungrouped.out == local
        assert sealed.out == local
        for captured in (grouped, ungrouped, sealed):
            assert "warning" not in captured.err
