"""The batch simulator's grouping law and engine integration.

Two families of guarantees:

* **the grouping law** (:mod:`repro.engine.batching`) — specs batch
  exactly when they run the same program on the same geometry: seeds,
  latency parameters, and models may differ inside a batch; workload,
  scale, rows, or cols differences split it.  Grouping is a
  deterministic permutation: every spec lands in exactly one batch,
  batches in first-member order, members in input order;
* **observational identity** — grouped execution is invisible in every
  output: per-spec results, :class:`EngineStats`, ``runs.jsonl``
  records, and the fingerprint-addressed cache records are all
  byte-identical to ungrouped execution (``Engine(grouping=False)``
  exists solely so this suite can hold the two side by side).

Cohort mechanics of :func:`repro.sim.batch.simulate_batch` (per-member
parameters split cohorts; the default parameter set is inherited) and
the degenerate ``ArraySimulator(strategy="batch")`` surface are locked
here too; per-member bit-identity lives in ``tests/test_sim_event.py``.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.engine import Engine, batch_key, group_specs
from repro.engine.spec import ModelSpec, RunSpec
from repro.sim.array import ArraySimulator
from repro.sim.batch import BatchRun, simulate_batch

from test_sim_array import vec_mul_program

MARIONETTE = ModelSpec.make("marionette")
VON_NEUMANN = ModelSpec.make("von_neumann")


def spec(workload="gemm", scale="tiny", seed=0, model=MARIONETTE,
         params=None):
    return RunSpec(workload=workload, scale=scale, seed=seed,
                   model=model, params=params or ArchParams())


# ----------------------------------------------------------------------
# The grouping law
# ----------------------------------------------------------------------
class TestGroupingLaw:
    def test_key_is_program_plus_geometry(self):
        base = spec()
        assert batch_key(base) == ("gemm", "tiny",
                                   base.params.rows, base.params.cols)

    def test_seeds_models_and_latencies_share_a_batch(self):
        """Everything that does not move the program or the grid may
        ride in one batch."""
        slow = replace(ArchParams(), data_net_latency=9)
        specs = [
            spec(seed=0),
            spec(seed=3),
            spec(model=VON_NEUMANN),
            spec(params=slow),
        ]
        batches = group_specs(specs)
        assert len(batches) == 1
        assert batches[0].specs == specs
        assert batches[0].indices == [0, 1, 2, 3]

    @pytest.mark.parametrize("other", [
        spec(workload="crc"),
        spec(scale="small"),
        spec(params=ArchParams().scaled(8, 8)),
        spec(params=ArchParams().scaled(4, 16)),
    ])
    def test_program_or_geometry_differences_split(self, other):
        batches = group_specs([spec(), other])
        assert len(batches) == 2
        assert [len(batch) for batch in batches] == [1, 1]

    def test_mixed_arch_sweep_splits_at_geometry_boundaries(self):
        """An arch sweep interleaving two geometries yields exactly two
        batches, each collecting its geometry's members in order."""
        small = ArchParams()
        large = ArchParams().scaled(8, 8)
        specs = [spec(seed=s, params=p)
                 for s in range(3) for p in (small, large)]
        batches = group_specs(specs)
        assert len(batches) == 2
        assert batches[0].indices == [0, 2, 4]
        assert batches[1].indices == [1, 3, 5]
        assert all(batch_key(member) == batch.key
                   for batch in batches for member in batch.specs)

    def test_grouping_is_a_covering_permutation(self):
        specs = [spec(workload=w, seed=s)
                 for w in ("gemm", "crc", "fft") for s in range(2)]
        batches = group_specs(specs)
        flattened = sorted(i for b in batches for i in b.indices)
        assert flattened == list(range(len(specs)))
        for batch in batches:
            assert [specs[i] for i in batch.indices] == batch.specs

    def test_empty_input(self):
        assert group_specs([]) == []


# ----------------------------------------------------------------------
# Cohort mechanics of simulate_batch
# ----------------------------------------------------------------------
class TestCohorts:
    def _naive(self, params, program, arrays):
        sim = ArraySimulator(params, program, strategy="naive")
        for name, values in arrays.items():
            sim.load_array(name, values)
        return sim.run(halt_messages=999)

    def test_per_member_params_split_cohorts(self, params):
        """Members carrying their own (same-geometry) parameters form
        separate cohorts and still match their standalone runs."""
        n = 8
        program = vec_mul_program(params, n)
        slow = replace(params, data_net_latency=7)
        arrays = {"A": np.arange(1, n + 1), "B": np.arange(2, n + 2)}
        results = simulate_batch(params, program, [
            BatchRun(arrays=arrays),
            BatchRun(arrays=arrays, params=slow),
            BatchRun(arrays=arrays),
        ], halt_messages=999)
        fast_ref = self._naive(params, program, arrays)
        slow_ref = self._naive(slow, program, arrays)
        assert results[0].cycles == fast_ref.cycles
        assert results[2].cycles == fast_ref.cycles
        assert results[1].cycles == slow_ref.cycles
        assert results[1].cycles > results[0].cycles
        assert results[0].stats == fast_ref.stats
        assert results[1].stats == slow_ref.stats

    def test_default_params_are_inherited(self, params):
        n = 4
        program = vec_mul_program(params, n)
        arrays = {"A": np.ones(n), "B": np.ones(n)}
        explicit, inherited = simulate_batch(params, program, [
            BatchRun(arrays=arrays, params=params),
            BatchRun(arrays=arrays),
        ], halt_messages=999)
        assert explicit.cycles == inherited.cycles
        assert explicit.stats == inherited.stats
        assert explicit.scratchpad.data == inherited.scratchpad.data

    def test_single_run_batch_strategy_degenerates_to_event(self, params):
        """``ArraySimulator(strategy="batch")`` on one run is the event
        schedule by definition — identical in every observable."""
        n = 6
        arrays = {"A": np.arange(1, n + 1), "B": np.arange(2, n + 2)}
        results = {}
        for strategy in ("event", "batch"):
            sim = ArraySimulator(params, vec_mul_program(params, n),
                                 strategy=strategy)
            for name, values in arrays.items():
                sim.load_array(name, values)
            results[strategy] = sim.run(halt_messages=999)
        event, batch = results["event"], results["batch"]
        assert batch.cycles == event.cycles
        assert batch.stats == event.stats
        assert batch.scratchpad.data == event.scratchpad.data

    def test_empty_batch(self, params):
        assert simulate_batch(
            params, vec_mul_program(params, 2), []
        ) == []


# ----------------------------------------------------------------------
# Observational identity: grouped == ungrouped, everywhere
# ----------------------------------------------------------------------
def sweep_specs():
    """A sweep that exercises grouping: two workloads, two seeds, two
    models, plus one odd-geometry spec that must split off."""
    specs = [
        spec(workload=w, seed=s, model=m)
        for w in ("gemm", "crc")
        for s in (0, 1)
        for m in (MARIONETTE, VON_NEUMANN)
    ]
    specs.append(spec(params=ArchParams().scaled(8, 8)))
    return specs


def _cache_files(root):
    """Relative path -> bytes for every record (the run log has a wall
    clock in it and is compared structurally instead)."""
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file() and path.name != "runs.jsonl"
    }


def _run_records(root):
    records = []
    for line in (root / "runs.jsonl").read_text().splitlines():
        record = json.loads(line)
        record.pop("time", None)
        records.append(record)
    return records


class TestGroupedExecutionIsInvisible:
    def test_results_stats_records_and_cache_are_identical(self, tmp_path):
        specs = sweep_specs()
        grouped = Engine(cache_dir=tmp_path / "grouped")
        ungrouped = Engine(cache_dir=tmp_path / "ungrouped",
                           grouping=False)
        assert grouped.grouping and not ungrouped.grouping

        grouped_results = grouped.execute(specs)
        ungrouped_results = ungrouped.execute(specs)

        # Per-spec results: same order, same payload bytes.
        assert [r.spec for r in grouped_results] == specs
        assert [r.result.to_payload() for r in grouped_results] == \
            [r.result.to_payload() for r in ungrouped_results]

        # Engine accounting is unchanged (grouping reorders work, it
        # does not create or skip any).
        assert grouped.stats.as_dict() == ungrouped.stats.as_dict()

        # runs.jsonl records match modulo the wall clock.
        grouped.record_run(command="test", scale="tiny", seed=0)
        ungrouped.record_run(command="test", scale="tiny", seed=0)
        assert _run_records(tmp_path / "grouped") == \
            _run_records(tmp_path / "ungrouped")

        # The fingerprint-addressed records are byte-identical: same
        # file set, same bytes.
        assert _cache_files(tmp_path / "grouped") == \
            _cache_files(tmp_path / "ungrouped")

    def test_parallel_grouped_matches_serial_ungrouped(self, tmp_path):
        specs = sweep_specs()
        serial = Engine(cache_dir=tmp_path / "serial", grouping=False)
        parallel = Engine(cache_dir=tmp_path / "parallel", jobs=2)
        assert [r.result.to_payload() for r in serial.execute(specs)] == \
            [r.result.to_payload() for r in parallel.execute(specs)]
        assert _cache_files(tmp_path / "serial") == \
            _cache_files(tmp_path / "parallel")

    def test_grouped_warm_cache_is_a_pure_hit(self, tmp_path):
        specs = sweep_specs()
        cold = Engine(cache_dir=tmp_path / "cache")
        cold.execute(specs)
        assert cold.stats.simulations == len(specs)
        warm = Engine(cache_dir=tmp_path / "cache")
        warm.execute(specs)
        assert warm.stats.simulations == 0
        assert warm.stats.sim_cache_hits == len(specs)
