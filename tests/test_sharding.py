"""Sharding tests: partition laws and shard-merge byte-identity.

The fingerprint-prefix partition must be a true partition (disjoint,
covering, order-independent), and the CLI round trip — N shard runs
exporting their working sets, merged back into one report — must be
byte-identical to the unsharded ``repro bench`` run in every format.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import (
    merge_shard_documents,
    parse_shard,
    read_shard_export,
    shard_of,
    shard_specs,
)
from repro.engine.cache import ENGINE_VERSION
from repro.errors import ConfigurationError, EngineError
from repro.experiments.report import all_specs

SCALE = "tiny"
SEED = 0


@pytest.fixture(scope="module")
def specs():
    return all_specs(SCALE, SEED)


class TestParseShard:
    def test_parses_well_formed_selectors(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/3") == (2, 3)

    @pytest.mark.parametrize(
        "text", ["", "1", "1/2/3", "a/b", "0/2", "3/2", "1/0", "-1/2"]
    )
    def test_rejects_malformed_selectors(self, text):
        with pytest.raises(ConfigurationError):
            parse_shard(text)


class TestPartitionLaws:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_shards_are_disjoint_and_cover(self, specs, count):
        shards = [shard_specs(specs, index, count)
                  for index in range(1, count + 1)]
        union = [spec for shard in shards for spec in shard]
        assert len(union) == len(specs)
        assert set(union) == set(specs)
        for a in range(count):
            for b in range(a + 1, count):
                assert not set(shards[a]) & set(shards[b])

    def test_assignment_is_order_independent(self, specs):
        forward = {spec: shard_of(spec, 4) for spec in specs}
        backward = {spec: shard_of(spec, 4) for spec in reversed(specs)}
        assert forward == backward

    def test_single_shard_is_the_whole_batch(self, specs):
        assert shard_specs(specs, 1, 1) == list(specs)

    def test_shards_preserve_batch_order(self, specs):
        shard = shard_specs(specs, 1, 2)
        positions = [specs.index(spec) for spec in shard]
        assert positions == sorted(positions)


class TestShardMergeCli:
    """Two shard runs + merge vs the unsharded run, every format."""

    @pytest.fixture(scope="class")
    def exports(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("shards")
        paths = []
        for index in (1, 2):
            path = root / f"shard{index}.json"
            assert main([
                "bench", "--scale", SCALE, "--seed", str(SEED),
                "--shard", f"{index}/2", "--export-shard", str(path),
                "--cache-dir", str(root / "cache"),
            ]) == 0
            paths.append(str(path))
        return paths

    @pytest.mark.parametrize("fmt", ["ascii", "json", "csv"])
    def test_merged_report_is_byte_identical(self, exports, fmt, capsys):
        assert main(["bench", "--scale", SCALE, "--seed", str(SEED),
                     "--format", fmt]) == 0
        unsharded = capsys.readouterr().out
        assert main(["bench", "--merge-shards", *exports,
                     "--format", fmt]) == 0
        merged = capsys.readouterr().out
        assert merged == unsharded

    def test_merge_recomputes_nothing(self, exports, capsys):
        assert main(["bench", "--merge-shards", *exports,
                     "--format", "csv"]) == 0
        captured = capsys.readouterr()
        assert "incomplete" not in captured.err

    def test_warm_cache_exports_are_complete(self, tmp_path, capsys):
        # A cycle-warm shard run never reads traces, so without explicit
        # prefetching its export would miss the trace records the merged
        # report reads (forcing a local recompute + warning at merge).
        cache = str(tmp_path / "cache")
        assert main(["bench", "--scale", SCALE, "--seed", str(SEED),
                     "--cache-dir", cache, "--format", "csv"]) == 0
        paths = []
        for index in (1, 2):
            path = str(tmp_path / f"shard{index}.json")
            assert main(["bench", "--scale", SCALE, "--seed", str(SEED),
                         "--shard", f"{index}/2", "--export-shard", path,
                         "--cache-dir", cache]) == 0
            paths.append(path)
        capsys.readouterr()
        assert main(["bench", "--merge-shards", *paths,
                     "--format", "csv"]) == 0
        assert "incomplete" not in capsys.readouterr().err

    def test_export_covers_only_its_shard(self, exports, specs):
        documents = [read_shard_export(path) for path in exports]
        sizes = [len(doc["entries"]) for doc in documents]
        merged = merge_shard_documents(documents)
        # Each shard export is a strict subset of the merged working set.
        assert all(size < len(merged["entries"]) for size in sizes)
        # Cycle records: one per unique spec across the whole batch.
        total_cycles = sum(
            1 for doc in documents for digest in doc["entries"]
            if digest in {spec.fingerprint() for spec in specs}
        )
        assert total_cycles == len(set(specs))


class TestMergeValidation:
    def test_incomplete_shard_set_rejected(self, tmp_path, capsys):
        path = tmp_path / "s1.json"
        assert main(["bench", "--scale", SCALE, "--shard", "1/2",
                     "--export-shard", str(path)]) == 0
        assert main(["bench", "--merge-shards", str(path),
                     "--format", "csv"]) == 2
        assert "cover" in capsys.readouterr().err

    def test_mismatched_scales_rejected(self):
        base = {"format": "repro-shard-export", "format_version": 1,
                "engine_version": ENGINE_VERSION, "seed": 0, "shard": None,
                "stats": {}, "entries": {}}
        with pytest.raises(EngineError, match="scale"):
            merge_shard_documents([
                dict(base, scale="tiny"), dict(base, scale="small"),
            ])

    def test_duplicate_shard_index_rejected(self):
        base = {"scale": "tiny", "seed": 0, "entries": {}}
        with pytest.raises(EngineError, match="cover"):
            merge_shard_documents([
                dict(base, shard=[1, 2]), dict(base, shard=[1, 2]),
            ])

    def test_structurally_incomplete_export_rejected(self, tmp_path):
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps({
            "format": "repro-shard-export", "format_version": 1,
            "engine_version": ENGINE_VERSION,
        }))
        with pytest.raises(EngineError, match="malformed"):
            read_shard_export(path)

    def test_non_dict_entries_rejected(self, tmp_path):
        path = tmp_path / "bad-entries.json"
        path.write_text(json.dumps({
            "format": "repro-shard-export", "format_version": 1,
            "engine_version": ENGINE_VERSION, "scale": "tiny", "seed": 0,
            "entries": ["not", "a", "table"],
        }))
        with pytest.raises(EngineError, match="malformed"):
            read_shard_export(path)

    def test_malformed_shard_coordinates_rejected(self, tmp_path):
        path = tmp_path / "bad-shard.json"
        path.write_text(json.dumps({
            "format": "repro-shard-export", "format_version": 1,
            "engine_version": ENGINE_VERSION, "scale": "tiny", "seed": 0,
            "entries": {}, "shard": 1,
        }))
        with pytest.raises(EngineError, match="malformed"):
            read_shard_export(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-shard.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(EngineError, match="not a repro shard export"):
            read_shard_export(path)

    def test_malformed_shard_selector_is_an_error(self, capsys):
        assert main(["bench", "--shard", "1-2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_with_merge_is_an_error(self, capsys):
        assert main(["bench", "--shard", "1/2",
                     "--merge-shards", "x.json"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_export_without_shard_is_an_error(self, capsys):
        assert main(["bench", "--export-shard", "x.json"]) == 2
        assert "requires --shard" in capsys.readouterr().err

    def test_shard_with_format_or_stats_is_an_error(self, capsys):
        # A shard run emits a shard export, never a report, so report
        # flags must be rejected rather than silently ignored.
        assert main(["bench", "--shard", "1/2", "--format", "csv"]) == 2
        assert "no effect with --shard" in capsys.readouterr().err
        assert main(["bench", "--shard", "1/2", "--stats"]) == 2
        assert "no effect with --shard" in capsys.readouterr().err

    def test_merge_with_stream_is_an_error(self, capsys):
        assert main(["bench", "--merge-shards", "x.json",
                     "--stream"]) == 2
        assert "no effect with --merge-shards" in capsys.readouterr().err

    def test_merge_with_scale_or_seed_is_an_error(self, capsys):
        # The exports carry their own (scale, seed); an explicit flag
        # would be silently superseded, so it is rejected instead.
        assert main(["bench", "--merge-shards", "x.json",
                     "--scale", "paper"]) == 2
        assert "no effect with --merge-shards" in capsys.readouterr().err
        assert main(["bench", "--merge-shards", "x.json",
                     "--seed", "7"]) == 2
        assert "no effect with --merge-shards" in capsys.readouterr().err
