"""Agile PE Assignment scheduler + configuration generation tests."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.arch.params import ArchParams
from repro.compiler.config_gen import generate_program
from repro.compiler.schedule import MarionetteScheduler
from repro.ir.builder import KernelBuilder
from repro.workloads import ALL_WORKLOADS, get_workload


class TestScheduler:
    def test_all_op_blocks_placed(self, params):
        scheduler = MarionetteScheduler(params)
        for workload in ALL_WORKLOADS:
            instance = workload.instance("tiny")
            schedule = scheduler.schedule(instance.cdfg)
            for block in instance.cdfg.blocks:
                if block.op_count == 0:
                    continue
                placement = schedule.placement_of(block.block_id)
                assert placement is not None, (
                    f"{workload.name}: block {block.name} unplaced"
                )
                assert placement.ii >= 1

    def test_levels_ordered_innermost_first(self, params, imperfect_kernel):
        schedule = MarionetteScheduler(params).schedule(imperfect_kernel)
        depths = [lvl.depth for lvl in schedule.levels]
        assert depths == sorted(depths, reverse=True)

    def test_deepest_level_wins_resolution(self, params, imperfect_kernel):
        schedule = MarionetteScheduler(params).schedule(imperfect_kernel)
        inner = imperfect_kernel.innermost_loops()[0]
        nests = imperfect_kernel.loop_nests()
        for bid in inner.own_blocks(nests):
            block = imperfect_kernel.block(bid)
            if block.op_count == 0:
                continue
            placement = schedule.placement_of(bid)
            deepest = schedule.levels[0].placements.get(bid)
            assert placement is deepest

    def test_agile_fills_spare_pes(self, params, saxpy_kernel):
        agile = MarionetteScheduler(params).schedule(saxpy_kernel)
        plain = MarionetteScheduler(
            params, enable_agile=False
        ).schedule(saxpy_kernel)
        agile_unrolls = [p.unroll for p in agile.all_placements()]
        plain_unrolls = [p.unroll for p in plain.all_placements()]
        assert max(agile_unrolls) >= max(plain_unrolls)

    def test_same_level_block_never_folded_over_itself(self, params):
        """Regression: a level's own block must keep its spatial mapping
        (the Gray Processing II=3 anomaly)."""
        gp = get_workload("gp").instance("tiny")
        schedule = MarionetteScheduler(params).schedule(gp.cdfg)
        for block in gp.cdfg.blocks:
            if block.op_count == 0:
                continue
            placement = schedule.placement_of(block.block_id)
            assert not placement.time_extended

    def test_branch_arms_share_lane(self, params, branchy_kernel):
        schedule = MarionetteScheduler(params).schedule(branchy_kernel)
        arms = [
            b.block_id for b in branchy_kernel.blocks
            if "then" in b.name or "else" in b.name
        ]
        placements = [schedule.placement_of(a) for a in arms]
        placements = [p for p in placements if p and p.op_count]
        if len(placements) == 2:
            lanes = [set(p.pes) for p in placements]
            assert lanes[1] <= lanes[0] or lanes[0] <= lanes[1]

    def test_waste_non_negative_metadata(self, params, imperfect_kernel):
        schedule = MarionetteScheduler(params).schedule(imperfect_kernel)
        for level in schedule.levels:
            assert isinstance(level.waste, int)


class TestConfigGen:
    def test_param_bound_into_immediates(self, params, saxpy_kernel):
        program = generate_program(
            saxpy_kernel, params, param_values={"n": 16},
            array_lengths={"x": 16, "y": 16},
        )
        assert program.total_entries() >= saxpy_kernel.total_op_count

    def test_missing_array_length(self, params, saxpy_kernel):
        with pytest.raises(CompilationError, match="missing length"):
            generate_program(saxpy_kernel, params, param_values={"n": 4})

    def test_multi_loop_kernel_rejected(self, params, imperfect_kernel):
        with pytest.raises(CompilationError, match="exactly one loop"):
            generate_program(
                imperfect_kernel, params, param_values={"n": 4},
                array_lengths={"rd": 8, "val": 8, "out": 8},
            )

    def test_branchy_kernel_rejected(self, params, branchy_kernel):
        with pytest.raises(CompilationError):
            generate_program(
                branchy_kernel, params, param_values={"n": 4},
                array_lengths={"a": 4, "b": 4, "o": 4},
            )

    def test_too_many_ops_rejected(self, params):
        k = KernelBuilder("wide")
        n = k.param("n")
        k.array("x")
        k.array("o")
        with k.loop("i", 0, n) as i:
            value = k.load("x", i)
            for _ in range(20):
                value = value * 3 + 1
            k.store("o", i, value)
        with pytest.raises(CompilationError, match="exceed"):
            generate_program(
                k.build(), params, param_values={"n": 4},
                array_lengths={"x": 4, "o": 4},
            )

    def test_program_validates(self, params, saxpy_kernel):
        program = generate_program(
            saxpy_kernel, params, param_values={"n": 8},
            array_lengths={"x": 8, "y": 8},
        )
        program.validate()
        assert 0 in program.initial_addrs  # the loop operator PE
