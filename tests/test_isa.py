"""ISA construction/validation tests + exhaustive encoding round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective, NO_ADDR, SenderMode
from repro.isa.data import DataInstruction, DataKind
from repro.isa.encoding import (
    decode_entry,
    decode_program,
    encode_entry,
    encode_program,
)
from repro.isa.operands import Dest, DestKind, Operand, OperandKind
from repro.isa.program import ArrayProgram, PEProgram, TriggerEntry


class TestOperands:
    def test_port_range(self):
        Operand.port(3)
        with pytest.raises(EncodingError):
            Operand.port(4)

    def test_reg_range(self):
        Operand.reg(7)
        with pytest.raises(EncodingError):
            Operand.reg(8)

    def test_imm_range(self):
        Operand.imm(2**19 - 1)
        Operand.imm(-2**19)
        with pytest.raises(EncodingError):
            Operand.imm(2**19)

    def test_dest_constructors(self):
        assert Dest.pe_port(3, 1).kind is DestKind.PE_PORT
        assert Dest.reg(2).kind is DestKind.REG
        assert Dest.control().kind is DestKind.CONTROL


class TestDataInstruction:
    def test_compute_arity_checked(self):
        with pytest.raises(EncodingError):
            DataInstruction.compute(Opcode.ADD, (Operand.port(0),), ())

    def test_compute_rejects_memory_opcode(self):
        with pytest.raises(EncodingError):
            DataInstruction.compute(
                Opcode.LOAD, (Operand.port(0),), ()
            )

    def test_loop_requires_three_bounds(self):
        with pytest.raises(EncodingError):
            DataInstruction(DataKind.LOOP, loop_bounds=(Operand.imm(0),))

    def test_nop_takes_nothing(self):
        with pytest.raises(EncodingError):
            DataInstruction(DataKind.NOP, srcs=(Operand.imm(0),))

    def test_port_sources(self):
        inst = DataInstruction.compute(
            Opcode.ADD, (Operand.port(1), Operand.imm(3)),
            (Dest.reg(0),),
        )
        assert inst.port_sources == (1,)


class TestControlDirective:
    def test_dfg_requires_next(self):
        with pytest.raises(EncodingError):
            ControlDirective(SenderMode.DFG)

    def test_branch_requires_both_addrs(self):
        with pytest.raises(EncodingError):
            ControlDirective(SenderMode.BRANCH, true_addr=1)

    def test_loop_requires_exit(self):
        with pytest.raises(EncodingError):
            ControlDirective(SenderMode.LOOP)

    def test_constructors(self):
        d = ControlDirective.branch(1, 2, (3, 4), priority=2)
        assert d.mode is SenderMode.BRANCH
        assert d.priority == 2


class TestProgram:
    def test_duplicate_address_rejected(self):
        program = PEProgram()
        entry = TriggerEntry(1, DataInstruction.nop())
        program.add(entry)
        with pytest.raises(EncodingError):
            program.add(entry)

    def test_initial_addr_must_exist(self):
        program = ArrayProgram(16)
        program.set_initial(0, 5)
        with pytest.raises(EncodingError):
            program.validate()

    def test_overlapping_arrays_rejected(self):
        program = ArrayProgram(16)
        program.declare_array(0, "a", 0, 10)
        with pytest.raises(EncodingError):
            program.declare_array(1, "b", 5, 10)

    def test_target_out_of_range(self):
        program = ArrayProgram(4)
        pe = program.program_for(0)
        pe.add(TriggerEntry(
            1, DataInstruction.nop(),
            ControlDirective.dfg(2, targets=(9,)),
        ))
        program.set_initial(0, 1)
        with pytest.raises(EncodingError):
            program.validate()

    def test_undeclared_array_in_load(self):
        program = ArrayProgram(4)
        pe = program.program_for(0)
        pe.add(TriggerEntry(
            1, DataInstruction.load(3, Operand.imm(0), (Dest.reg(0),)),
        ))
        program.set_initial(0, 1)
        with pytest.raises(EncodingError):
            program.validate()


# ----------------------------------------------------------------------
# Encoding round trips
# ----------------------------------------------------------------------
_operands = st.one_of(
    st.builds(Operand.port, st.integers(0, 3)),
    st.builds(Operand.reg, st.integers(0, 7)),
    st.builds(Operand.imm, st.integers(-2**19, 2**19 - 1)),
)
_dests = st.one_of(
    st.builds(Dest.pe_port, st.integers(0, 255), st.integers(0, 3)),
    st.builds(Dest.reg, st.integers(0, 7)),
    st.just(Dest.control()),
)
_compute_opcodes = st.sampled_from([
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.XOR,
    Opcode.LT, Opcode.SELECT, Opcode.NEG, Opcode.SIGMOID,
])


@st.composite
def _instructions(draw):
    kind = draw(st.sampled_from(list(DataKind)))
    dests = tuple(draw(st.lists(_dests, max_size=4)))
    if kind is DataKind.COMPUTE:
        opcode = draw(_compute_opcodes)
        from repro.ir.ops import op_info

        srcs = tuple(draw(st.lists(
            _operands, min_size=op_info(opcode).arity,
            max_size=op_info(opcode).arity,
        )))
        return DataInstruction.compute(opcode, srcs, dests)
    if kind is DataKind.LOAD:
        return DataInstruction.load(
            draw(st.integers(0, 63)), draw(_operands), dests
        )
    if kind is DataKind.STORE:
        return DataInstruction.store(
            draw(st.integers(0, 63)), draw(_operands), draw(_operands)
        )
    if kind is DataKind.LOOP:
        return DataInstruction.loop(
            draw(_operands), draw(_operands), draw(_operands), dests
        )
    return DataInstruction.nop()


@st.composite
def _directives(draw):
    mode = draw(st.sampled_from(list(SenderMode)))
    targets = tuple(draw(st.lists(st.integers(0, 255), max_size=8)))
    priority = draw(st.integers(0, 15))
    if mode is SenderMode.DFG:
        return ControlDirective.dfg(
            draw(st.integers(0, 254)), targets, priority
        )
    if mode is SenderMode.BRANCH:
        return ControlDirective.branch(
            draw(st.integers(0, 254)), draw(st.integers(0, 254)),
            targets, priority,
        )
    if mode is SenderMode.LOOP:
        return ControlDirective.loop(
            draw(st.integers(0, 254)), targets, priority
        )
    return ControlDirective.none()


@st.composite
def _entries(draw):
    return TriggerEntry(
        draw(st.integers(0, 63)), draw(_instructions()), draw(_directives())
    )


class TestEncoding:
    @settings(max_examples=300, deadline=None)
    @given(_entries())
    def test_entry_roundtrip(self, entry):
        assert decode_entry(encode_entry(entry)) == entry

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_entries(), min_size=1, max_size=8))
    def test_program_roundtrip(self, entries):
        program = ArrayProgram(16)
        program.declare_array(0, "a", 0, 64)
        used = set()
        pe_program = program.program_for(0)
        for entry in entries:
            if entry.addr in used:
                continue
            used.add(entry.addr)
            pe_program.add(entry)
        image = encode_program(program)
        decoded = decode_program(image)
        assert decoded.n_pes == 16
        assert len(decoded.program_for(0)) == len(used)
        for entry in pe_program:
            assert decoded.program_for(0).get(entry.addr) == entry
