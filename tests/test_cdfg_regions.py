"""CDFG structural analyses: forward regions, under-branch sets,
imperfect-loop detection on crafted graph shapes."""

import pytest

from repro.ir.builder import KernelBuilder
from repro.ir.cfg import BlockRole


def names_of(cdfg, ids):
    return {cdfg.block(b).name for b in ids}


class TestUnderBranch:
    def test_nested_branch_regions_union(self):
        k = KernelBuilder("nested")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            with k.branch(i < 4) as outer:
                with k.branch(i < 2) as inner:
                    k.set("v", 1)
                with inner.orelse():
                    k.set("v", 2)
            with outer.orelse():
                k.set("v", 3)
            k.store("o", i, k.get("v"))
        cdfg = k.build()
        under = names_of(cdfg, cdfg.under_branch_blocks())
        # Both levels of arms are under a branch.
        assert any("br1_then" in name for name in under)
        assert any("br2_then" in name for name in under)
        # The loop header is not.
        assert not any("head" in name for name in under)

    def test_loop_inside_branch_is_under_it(self):
        k = KernelBuilder("loop_in_branch")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            with k.branch(i < 3):
                with k.loop("t", 0, 4) as t:
                    k.store("o", t, t)
        cdfg = k.build()
        under = names_of(cdfg, cdfg.under_branch_blocks())
        assert any("loop_t" in name for name in under)

    def test_merge_point_not_under_branch(self, branchy_kernel):
        under = names_of(branchy_kernel,
                         branchy_kernel.under_branch_blocks())
        assert not any("merge" in name for name in under)


class TestImperfectDetection:
    def test_perfect_nest_not_imperfect(self):
        k = KernelBuilder("perfect")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            with k.loop("j", 0, n) as j:
                k.store("o", i * n + j, i + j)
        cdfg = k.build()
        # The outer level carries only the `i * n` style address math, but
        # that lives in the inner body here; nothing but control at level 1.
        assert cdfg.max_loop_depth() == 2

    def test_computation_in_outer_body_is_imperfect(self):
        k = KernelBuilder("imperfect")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            k.set("row", i * n + 1)
            with k.loop("j", 0, n) as j:
                k.store("o", j, k.get("row"))
        cdfg = k.build()
        assert cdfg.is_imperfect()

    def test_single_loop_never_imperfect(self, saxpy_kernel):
        assert not saxpy_kernel.is_imperfect()


class TestSummaries:
    def test_summary_string(self, imperfect_kernel):
        text = imperfect_kernel.summary()
        assert "spmv" in text
        assert "2 loops" in text
        assert "imperfect=True" in text

    def test_total_op_count(self, saxpy_kernel):
        assert saxpy_kernel.total_op_count == sum(
            b.op_count for b in saxpy_kernel.blocks
        )

    def test_validate_catches_undeclared_array(self):
        from repro.errors import IRError
        from repro.ir.cdfg import CDFG

        k = KernelBuilder("bad")
        k.array("a")
        k.store("a", 0, 1)
        good = k.build()
        # Rebuild a CDFG claiming no arrays: validation must fail.
        bad = CDFG("bad2", good.cfg, params=(), arrays=())
        with pytest.raises(IRError):
            bad.validate()
