"""Cache-administration tests: stats, run-log hit rates, pruning.

Pruning must be *surgical*: whatever policy removes records, every
surviving record must remain a byte-identical cache hit — hit rates for
survivors are untouched.  The default size budget only warns (the
unbounded-growth footgun fix): nothing is deleted without an explicit
``repro cache prune``.
"""

from __future__ import annotations

import os

import pytest

from repro.arch.params import DEFAULT_PARAMS
from repro.cli import main
from repro.engine import Engine, ModelSpec, RunSpec, TraceCache
from repro.engine.cache import ENGINE_VERSION
from repro.engine.cache_admin import (
    DEFAULT_BUDGET_MB,
    collect_stats,
    hit_rate,
    prune,
    scan,
    size_budget_bytes,
)

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")


def _specs(scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc")
        for model in (VN, MARIONETTE)
    ]


def _warm(tmp_path) -> Engine:
    engine = Engine(cache_dir=tmp_path)
    engine.execute(_specs())
    return engine


class TestStats:
    def test_stats_on_missing_and_empty_cache(self, tmp_path):
        missing = collect_stats(tmp_path / "never-created")
        assert missing.entries == 0 and missing.total_bytes == 0
        assert not missing.over_budget and missing.runs == []
        empty = collect_stats(tmp_path)
        assert empty.entries == 0

    def test_stats_on_warm_cache(self, tmp_path):
        _warm(tmp_path)
        stats = collect_stats(tmp_path)
        assert stats.by_kind == {"trace": 2, "cycles": 4}
        assert stats.entries == 6
        assert stats.total_bytes == sum(e.size for e in scan(tmp_path))
        assert set(stats.by_version) == {ENGINE_VERSION}

    def test_run_log_drives_hit_rates(self, tmp_path):
        cold = _warm(tmp_path)
        cold.record_run(command="test")
        warm = Engine(cache_dir=tmp_path)
        warm.execute(_specs())
        warm.record_run(command="test")
        stats = collect_stats(tmp_path)
        assert len(stats.runs) == 2
        assert hit_rate(stats.runs[0]["stats"]) == 0.0
        assert stats.last_run_hit_rate == 1.0
        assert 0.0 < stats.aggregate_hit_rate < 1.0

    def test_foreign_and_truncated_files_are_skipped_not_fatal(
            self, tmp_path, capsys):
        """A cache dir polluted with non-record JSON must still stat.

        Foreign envelopes can put *anything* in the key fields (an
        unhashable version, a numeric kind); the stats walk reports
        them as skipped instead of aborting.
        """
        _warm(tmp_path)
        rogue = tmp_path / "ab"
        rogue.mkdir(exist_ok=True)
        (rogue / ("ab" * 31 + "00.json")).write_text(
            '{"key": {"kind": "trace", "version": [2]}}',
            encoding="utf-8",
        )
        (rogue / ("ab" * 31 + "01.json")).write_text(
            '{"trunc', encoding="utf-8"
        )
        (rogue / ("ab" * 31 + "02.json")).write_text(
            '[1, 2, 3]', encoding="utf-8"
        )
        stats = collect_stats(tmp_path)           # must not raise
        assert stats.by_kind["trace"] == 2 and stats.by_kind["cycles"] == 4
        assert stats.by_kind["unknown"] == 3
        assert stats.by_version[None] == 3
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "skipped: 3 unreadable or foreign files" in out

    def test_run_log_is_not_a_cache_entry(self, tmp_path):
        engine = _warm(tmp_path)
        engine.record_run(command="test")
        entries = scan(tmp_path)
        assert all(entry.path.name != "runs.jsonl" for entry in entries)
        assert collect_stats(tmp_path).entries == len(entries)

    def test_hit_rate_of_idle_run_is_none(self):
        assert hit_rate({"trace_cache_hits": 0, "sim_cache_hits": 0,
                         "traces_computed": 0, "simulations": 0}) is None
        assert hit_rate({}) is None


class TestBudget:
    def test_default_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_BUDGET_MB", raising=False)
        assert size_budget_bytes() == int(DEFAULT_BUDGET_MB * 1024 * 1024)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "1.5")
        assert size_budget_bytes() == int(1.5 * 1024 * 1024)
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "not-a-number")
        assert size_budget_bytes() == int(DEFAULT_BUDGET_MB * 1024 * 1024)

    def test_over_budget_is_a_warning_not_an_eviction(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "0.000001")
        assert main(["bench", "--scale", "tiny", "--cache-dir",
                     str(tmp_path), "--format", "csv"]) == 0
        captured = capsys.readouterr()
        assert "over the" in captured.err and "repro cache prune" \
            in captured.err
        # The warning changed nothing: every record is still there.
        entries = scan(tmp_path)
        assert len(entries) > 0
        stats = collect_stats(tmp_path)
        assert stats.over_budget

    def test_within_budget_stays_quiet(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_BUDGET_MB", raising=False)
        assert main(["bench", "--scale", "tiny", "--cache-dir",
                     str(tmp_path), "--format", "csv"]) == 0
        assert "over the" not in capsys.readouterr().err


class TestPrune:
    def test_prune_by_age(self, tmp_path):
        _warm(tmp_path)
        entries = scan(tmp_path)
        old = entries[: len(entries) // 2]
        for entry in old:
            os.utime(entry.path, (entry.mtime - 10 * 86400,
                                  entry.mtime - 10 * 86400))
        report = prune(tmp_path, max_age_days=5)
        assert report.removed == len(old)
        assert report.reasons == {"expired": len(old)}
        assert report.kept == len(entries) - len(old)

    def test_prune_to_size_evicts_oldest_first(self, tmp_path):
        _warm(tmp_path)
        entries = scan(tmp_path)
        total = sum(entry.size for entry in entries)
        budget = total - entries[0].size  # must evict exactly the oldest
        report = prune(tmp_path, max_size_bytes=budget)
        assert report.reasons["size-budget"] >= 1
        assert sum(e.size for e in scan(tmp_path)) <= budget
        survivors = {entry.digest for entry in scan(tmp_path)}
        assert entries[0].digest not in survivors

    def test_prune_to_zero_empties_the_cache(self, tmp_path):
        _warm(tmp_path)
        report = prune(tmp_path, max_size_bytes=0)
        assert report.kept == 0
        assert scan(tmp_path) == []

    def test_prune_drops_stale_versions_and_unreadable(self, tmp_path):
        _warm(tmp_path)
        cache = TraceCache(tmp_path)
        cache.put({"kind": "cycles", "version": 0, "probe": True},
                  {"cycles": 1})
        junk = tmp_path / "ab" / ("f" * 64 + ".json")
        junk.parent.mkdir(exist_ok=True)
        junk.write_text("{not json")
        current = len(scan(tmp_path)) - 2
        report = prune(tmp_path, stale_versions=True)
        assert report.reasons == {"stale-version": 1, "unreadable": 1}
        assert report.kept == current

    def test_survivors_still_hit_after_prune(self, tmp_path):
        """The acceptance property: pruning one policy's victims leaves
        every surviving record a byte-identical hit."""
        _warm(tmp_path)
        # Age out the trace records only; the cycle records survive.
        for entry in scan(tmp_path):
            if entry.kind == "trace":
                os.utime(entry.path, (entry.mtime - 10 * 86400,) * 2)
        prune(tmp_path, max_age_days=5)

        fresh = Engine(cache_dir=tmp_path)
        results = fresh.execute(_specs())
        assert all(run_result.cached for run_result in results)
        assert fresh.stats.sim_cache_hits == len(_specs())
        assert fresh.stats.simulations == 0
        # Hit rate of the post-prune run is fully intact for survivors:
        # every lookup that had a surviving record hit.
        assert hit_rate(fresh.stats.as_dict()) == 1.0

    def test_prune_roundtrip_then_repopulate(self, tmp_path):
        """prune everything -> rerun -> stats and hits fully recover."""
        first = _warm(tmp_path)
        first.record_run(command="test")
        prune(tmp_path, max_size_bytes=0)
        rebuilt = Engine(cache_dir=tmp_path)
        rebuilt.execute(_specs())
        rebuilt.record_run(command="test")
        stats = collect_stats(tmp_path)
        assert stats.by_kind == {"trace": 2, "cycles": 4}
        assert len(stats.runs) == 2          # the log survives pruning
        warm = Engine(cache_dir=tmp_path)
        warm.execute(_specs())
        assert warm.stats.simulations == 0


class TestCacheCli:
    def test_stats_command_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out and "runs logged: 0" in out

    def test_stats_command_warm(self, tmp_path, capsys):
        assert main(["bench", "--scale", "tiny", "--cache-dir",
                     str(tmp_path), "--format", "csv"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "trace:" in out
        assert "runs logged: 1" in out
        assert "hit rate" in out

    def test_stats_budget_flag(self, tmp_path, capsys):
        assert main(["bench", "--scale", "tiny", "--cache-dir",
                     str(tmp_path), "--format", "csv"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--budget-mb", "0.000001"]) == 0
        captured = capsys.readouterr()
        assert "[OVER BUDGET]" in captured.out
        assert "repro cache prune" in captured.err

    def test_prune_command(self, tmp_path, capsys):
        assert main(["bench", "--scale", "tiny", "--cache-dir",
                     str(tmp_path), "--format", "csv"]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-size-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out and "kept 0 entries" in out

    def test_warm_cache_proof_via_stats(self, tmp_path, capsys):
        """The documented zero-recompute check: second bench run logs a
        100% hit rate."""
        for _ in range(2):
            assert main(["bench", "--scale", "tiny", "--cache-dir",
                         str(tmp_path), "--format", "csv"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "hit rate 100.0%" in capsys.readouterr().out


class TestRunLogCompaction:
    """runs.jsonl must not become its own unbounded-growth footgun."""

    def test_log_self_compacts_to_newest_records(self, tmp_path,
                                                 monkeypatch):
        from repro.engine import cache as cache_module

        monkeypatch.setattr(cache_module, "RUN_LOG_MAX_BYTES", 1024)
        monkeypatch.setattr(cache_module, "RUN_LOG_KEEP", 8)
        store = TraceCache(tmp_path)
        for index in range(200):
            store.record_run({"command": "bench", "index": index})
        records = store.read_run_log()
        # Bounded (well under 200 appends) and newest-surviving.
        assert len(records) < 40
        assert records[-1]["index"] == 199
        indices = [r["index"] for r in records]
        assert indices == sorted(indices)
        assert store.run_log_path.stat().st_size <= 1024

    def test_compaction_leaves_records_untouched(self, tmp_path,
                                                 monkeypatch):
        from repro.engine import cache as cache_module

        engine = _warm(tmp_path)
        before = {e.digest for e in scan(tmp_path)}
        monkeypatch.setattr(cache_module, "RUN_LOG_MAX_BYTES", 64)
        monkeypatch.setattr(cache_module, "RUN_LOG_KEEP", 2)
        for index in range(20):
            engine.cache.record_run({"command": "bench", "index": index})
        assert {e.digest for e in scan(tmp_path)} == before
        assert len(engine.cache.read_run_log()) <= 3


class TestAggregateRobustness:
    def test_half_malformed_record_is_skipped_whole(self, tmp_path):
        store = TraceCache(tmp_path)
        # Hits present but work counters missing: must not skew the
        # aggregate with orphaned hits.
        store.record_run({"stats": {"trace_cache_hits": 10,
                                    "sim_cache_hits": 0}})
        store.record_run({"stats": {"trace_cache_hits": 1,
                                    "sim_cache_hits": 0,
                                    "traces_computed": 1,
                                    "simulations": 0}})
        stats = collect_stats(tmp_path)
        assert stats.aggregate_hit_rate == 0.5
