"""Golden-result regression tests for all nine experiments.

Each experiment's ``small``-scale output is snapshotted as JSON under
``tests/golden/``; any numeric drift — a model change, a trace change, a
float reordering — fails the comparison.  When a change is intentional,
regenerate the snapshots and review the diff:

    PYTHONPATH=src python -m pytest tests/test_golden_experiments.py \
        --update-golden

The comparison is exact: payloads round-trip through JSON (repr-faithful
floats), so even last-ulp drift is caught.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.engine import Engine, result_payload
from repro.experiments import report

GOLDEN_DIR = Path(__file__).parent / "golden"
SCALE = "small"
SEED = 0

#: snapshot slug -> position in :func:`report.run_all`'s paper order
SLUGS = ("fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
         "table4", "table6")


@pytest.fixture(scope="module")
def results() -> Dict[str, object]:
    """All nine experiments, run once through a dedicated engine."""
    engine = Engine()
    return dict(zip(SLUGS, report.run_all(SCALE, SEED, engine=engine)))


def _canonical(result) -> dict:
    """The JSON-round-tripped payload (what the snapshot stores)."""
    return json.loads(json.dumps(result_payload(result)))


def _first_difference(golden: dict, current: dict, path: str = "$"):
    """Human-oriented pointer to the first drifted leaf."""
    if type(golden) is not type(current):
        return f"{path}: type {type(golden).__name__} -> " \
               f"{type(current).__name__}"
    if isinstance(golden, dict):
        for key in sorted(set(golden) | set(current)):
            if key not in golden:
                return f"{path}.{key}: unexpected new key"
            if key not in current:
                return f"{path}.{key}: key disappeared"
            found = _first_difference(golden[key], current[key],
                                      f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(golden, list):
        if len(golden) != len(current):
            return f"{path}: length {len(golden)} -> {len(current)}"
        for index, (g, c) in enumerate(zip(golden, current)):
            found = _first_difference(g, c, f"{path}[{index}]")
            if found:
                return found
        return None
    if golden != current:
        return f"{path}: {golden!r} -> {current!r}"
    return None


@pytest.mark.parametrize("slug", SLUGS)
def test_golden(slug, results, request):
    payload = _canonical(results[slug])
    path = GOLDEN_DIR / f"{slug}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert path.exists(), (
        f"missing snapshot {path}; generate it with "
        f"pytest tests/test_golden_experiments.py --update-golden"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    drift = _first_difference(golden, payload)
    assert payload == golden, (
        f"{slug} drifted from its golden snapshot (first difference: "
        f"{drift}); if intentional, regenerate with --update-golden and "
        f"review the diff"
    )


def test_snapshots_cover_every_experiment():
    """run_all and the snapshot list must stay in sync."""
    assert len(report.EXPERIMENT_MODULES) == len(SLUGS)
