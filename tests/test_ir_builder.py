"""Unit tests for the KernelBuilder DSL."""

import numpy as np
import pytest

from repro.errors import BuilderError
from repro.ir.builder import KernelBuilder, Value
from repro.ir.cfg import BlockRole, Branch, Halt
from repro.ir.interp import Interpreter


def run(cdfg, memory, params=None):
    return Interpreter(cdfg).run(memory, params or {})


class TestBasics:
    def test_empty_kernel(self):
        k = KernelBuilder("empty")
        cdfg = k.build()
        assert len(cdfg.blocks) == 1
        assert isinstance(cdfg.blocks[0].terminator, Halt)

    def test_build_twice_raises(self):
        k = KernelBuilder("k")
        k.build()
        with pytest.raises(BuilderError):
            k.build()

    def test_emit_after_build_raises(self):
        k = KernelBuilder("k")
        k.build()
        with pytest.raises(BuilderError):
            k.const(1)

    def test_param_declared_twice(self):
        k = KernelBuilder("k")
        k.param("n")
        with pytest.raises(BuilderError):
            k.param("n")

    def test_undeclared_array_raises(self):
        k = KernelBuilder("k")
        with pytest.raises(BuilderError):
            k.load("missing", 0)

    def test_foreign_value_rejected(self):
        k1 = KernelBuilder("a")
        k2 = KernelBuilder("b")
        v = k1.const(1)
        with pytest.raises(BuilderError):
            k2.set("x", v)


class TestOperators:
    def test_arithmetic_operators(self):
        k = KernelBuilder("k")
        k.array("o")
        a = k.const(10)
        b = k.const(3)
        k.store("o", 0, a + b)
        k.store("o", 1, a - b)
        k.store("o", 2, a * b)
        k.store("o", 3, a / b)
        k.store("o", 4, a % b)
        k.store("o", 5, -a)
        k.store("o", 6, a & b)
        k.store("o", 7, a | b)
        k.store("o", 8, a ^ b)
        k.store("o", 9, a << b)
        k.store("o", 10, a >> b)
        result = run(k.build(), {"o": np.zeros(11, dtype=np.int64)})
        assert list(result.array("o")) == [
            13, 7, 30, 3, 1, -10, 2, 11, 9, 80, 1
        ]

    def test_reflected_operators(self):
        k = KernelBuilder("k")
        k.array("o")
        a = k.const(5)
        k.store("o", 0, 1 + a)
        k.store("o", 1, 10 - a)
        k.store("o", 2, 2 * a)
        k.store("o", 3, 20 / a)
        result = run(k.build(), {"o": np.zeros(4, dtype=np.int64)})
        assert list(result.array("o")) == [6, 5, 10, 4]

    def test_comparisons_and_select(self):
        k = KernelBuilder("k")
        k.array("o")
        a = k.const(2)
        b = k.const(5)
        k.store("o", 0, a < b)
        k.store("o", 1, a.eq(b))
        k.store("o", 2, a.ne(b))
        k.store("o", 3, k.select(a < b, 100, 200))
        result = run(k.build(), {"o": np.zeros(4, dtype=np.int64)})
        assert list(result.array("o")) == [1, 0, 1, 100]

    def test_math_helpers(self):
        k = KernelBuilder("k")
        k.array("o")
        k.store("o", 0, k.minimum(3, 8))
        k.store("o", 1, k.maximum(3, 8))
        k.store("o", 2, k.absolute(-4))
        result = run(k.build(), {"o": np.zeros(3, dtype=np.int64)})
        assert list(result.array("o")) == [3, 8, 4]


class TestControlFlow:
    def test_counted_loop_trip_count(self):
        k = KernelBuilder("k")
        k.array("o")
        k.set("acc", 0)
        with k.loop("i", 0, 10):
            k.set("acc", k.get("acc") + 1)
        k.store("o", 0, k.get("acc"))
        result = run(k.build(), {"o": np.zeros(1, dtype=np.int64)})
        assert result.array("o")[0] == 10

    def test_loop_with_step(self):
        k = KernelBuilder("k")
        k.array("o")
        k.set("acc", 0)
        with k.loop("i", 0, 10, step=3) as i:
            k.set("acc", k.get("acc") + i)
        k.store("o", 0, k.get("acc"))
        result = run(k.build(), {"o": np.zeros(1, dtype=np.int64)})
        assert result.array("o")[0] == 0 + 3 + 6 + 9

    def test_zero_trip_loop(self):
        k = KernelBuilder("k")
        k.array("o")
        k.set("acc", 42)
        with k.loop("i", 5, 5):
            k.set("acc", 0)
        k.store("o", 0, k.get("acc"))
        result = run(k.build(), {"o": np.zeros(1, dtype=np.int64)})
        assert result.array("o")[0] == 42

    def test_nonpositive_step_rejected(self):
        k = KernelBuilder("k")
        with pytest.raises(BuilderError):
            with k.loop("i", 0, 10, step=0):
                pass

    def test_while_loop(self):
        k = KernelBuilder("k")
        k.array("o")
        k.set("x", 1)
        with k.while_(lambda: k.get("x") < 100):
            k.set("x", k.get("x") * 2)
        k.store("o", 0, k.get("x"))
        result = run(k.build(), {"o": np.zeros(1, dtype=np.int64)})
        assert result.array("o")[0] == 128

    def test_branch_both_arms(self):
        k = KernelBuilder("k")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            with k.branch((i % 2).eq(0)) as br:
                k.set("v", i * 10)
            with br.orelse():
                k.set("v", i)
            k.store("o", i, k.get("v"))
        result = run(k.build(), {"o": np.zeros(6, dtype=np.int64)}, {"n": 6})
        assert list(result.array("o")) == [0, 1, 20, 3, 40, 5]

    def test_branch_without_orelse(self):
        k = KernelBuilder("k")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            k.set("v", 0)
            with k.branch(i > 2):
                k.set("v", 1)
            k.store("o", i, k.get("v"))
        result = run(k.build(), {"o": np.zeros(5, dtype=np.int64)}, {"n": 5})
        assert list(result.array("o")) == [0, 0, 0, 1, 1]

    def test_orelse_before_then_completes_raises(self):
        k = KernelBuilder("k")
        br = k.branch(k.const(1))
        with pytest.raises(BuilderError):
            with br.orelse():
                pass

    def test_nested_branches(self):
        k = KernelBuilder("k")
        n = k.param("n")
        k.array("o")
        with k.loop("i", 0, n) as i:
            with k.branch(i < 2) as outer:
                with k.branch(i < 1) as inner:
                    k.set("v", 100)
                with inner.orelse():
                    k.set("v", 200)
            with outer.orelse():
                k.set("v", 300)
            k.store("o", i, k.get("v"))
        result = run(k.build(), {"o": np.zeros(4, dtype=np.int64)}, {"n": 4})
        assert list(result.array("o")) == [100, 200, 300, 300]

    def test_cross_block_value_spills(self):
        k = KernelBuilder("k")
        k.array("o")
        base = k.const(7) * 3  # defined in entry block
        with k.loop("i", 0, 3) as i:
            k.store("o", i, base + i)  # used inside the loop body
        result = run(k.build(), {"o": np.zeros(3, dtype=np.int64)})
        assert list(result.array("o")) == [21, 22, 23]

    def test_roles_assigned(self):
        k = KernelBuilder("k")
        with k.loop("i", 0, 3):
            with k.branch(k.get("i") < 1):
                pass
        cdfg = k.build()
        roles = {b.role for b in cdfg.blocks}
        assert BlockRole.LOOP_HEADER in roles
        assert BlockRole.BRANCH_ARM in roles

    def test_loop_header_has_loop_branch(self):
        k = KernelBuilder("k")
        with k.loop("i", 0, 3):
            pass
        cdfg = k.build()
        headers = [b for b in cdfg.blocks if b.role is BlockRole.LOOP_HEADER]
        assert len(headers) == 1
        assert isinstance(headers[0].terminator, Branch)
        assert headers[0].terminator.is_loop_branch
        assert headers[0].loop_var == "i"

    def test_dynamic_loop_bounds(self):
        k = KernelBuilder("k")
        k.array("bounds")
        k.array("o")
        lo = k.load("bounds", 0)
        hi = k.load("bounds", 1)
        k.set("acc", 0)
        with k.loop("j", lo, hi) as j:
            k.set("acc", k.get("acc") + j)
        k.store("o", 0, k.get("acc"))
        result = run(
            k.build(),
            {"bounds": np.array([3, 7]), "o": np.zeros(1, dtype=np.int64)},
        )
        assert result.array("o")[0] == 3 + 4 + 5 + 6
