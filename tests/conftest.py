"""Shared fixtures: canonical kernels and architecture parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.ir.builder import KernelBuilder


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the tests/golden/*.json experiment snapshots "
             "instead of comparing against them",
    )
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="also run the paper-scale golden lane (several minutes; "
             "see docs/ENGINE.md 'Performance' for the CI recipe)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "paper_scale: slow paper-scale experiment regression "
        "(deselected unless --paper-scale is given)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--paper-scale"):
        return
    skip = pytest.mark.skip(reason="needs --paper-scale")
    for item in items:
        if "paper_scale" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def params() -> ArchParams:
    return ArchParams()


@pytest.fixture
def saxpy_kernel():
    """A single counted loop: y[i] = 3*x[i] + y[i]."""
    k = KernelBuilder("saxpy")
    n = k.param("n")
    k.array("x")
    k.array("y")
    with k.loop("i", 0, n) as i:
        k.store("y", i, k.load("x", i) * 3 + k.load("y", i))
    return k.build()


@pytest.fixture
def branchy_kernel():
    """One loop with a two-way branch: o[i] = |a[i] - b[i]|."""
    k = KernelBuilder("absdiff")
    n = k.param("n")
    k.array("a")
    k.array("b")
    k.array("o")
    with k.loop("i", 0, n) as i:
        x = k.load("a", i)
        y = k.load("b", i)
        with k.branch(x < y) as br:
            k.set("d", y - x)
        with br.orelse():
            k.set("d", x - y)
        k.store("o", i, k.get("d"))
    return k.build()


@pytest.fixture
def imperfect_kernel():
    """A two-level imperfect nest (SPMV shape)."""
    k = KernelBuilder("spmv")
    n = k.param("n")
    k.array("rd")
    k.array("val")
    k.array("out")
    with k.loop("i", 0, n) as i:
        lo = k.load("rd", i)
        hi = k.load("rd", i + 1)
        k.set("s", 0)
        with k.loop("j", lo, hi) as j:
            k.set("s", k.get("s") + k.load("val", j))
        k.store("out", i, k.get("s"))
    return k.build()


@pytest.fixture
def spmv_inputs():
    rd = np.array([0, 2, 5, 5, 9])
    val = np.arange(1, 10)
    out = np.zeros(4, dtype=np.int64)
    expected = np.array([val[0] + val[1], val[2] + val[3] + val[4], 0,
                         val[5] + val[6] + val[7] + val[8]])
    return {"rd": rd, "val": val, "out": out}, {"n": 4}, expected
