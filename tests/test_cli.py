"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_workloads_command(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "verified" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "gemm", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Marionette" in out and "cycles" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_experiment_fig12_tiny(self, capsys):
        assert main(["experiment", "fig12", "--scale", "tiny"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_bench_json_is_content_only_by_default(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        # Run-environment facts stay out of the report document, so
        # batch/stream/warm/shard-merged runs are byte-identical.
        assert "engine_stats" not in document and "jobs" not in document
        assert document["scale"] == "tiny" and len(
            document["experiments"]) == 9

    def test_bench_json_stats_flag_attaches_engine_stats(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--stats"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["engine_stats"]["simulations"] > 0
        assert document["engine_stats"]["traces_computed"] > 0

    def test_stats_without_json_rejected(self, capsys):
        # --stats only affects the JSON document; dropping it silently
        # for ascii/csv would hide the user's intent.
        assert main(["bench", "--scale", "tiny", "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err
        assert main(["bench", "--scale", "tiny", "--format", "csv",
                     "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err

    def test_prune_to_budget_requires_cache_dir(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--prune-to-budget"]) == 2
        assert "requires --cache-dir" in capsys.readouterr().err

    def test_profile_rejects_other_execution_modes(self, capsys):
        # --profile times the local batch phases; every other execution
        # mode would make the phase timings describe something else.
        for combo in (["--stream"],
                      ["--shard", "1/2"],
                      ["--merge-shards", "x.json"],
                      ["--dispatch", "http://127.0.0.1:1"]):
            assert main(["bench", "--scale", "tiny",
                         "--profile", *combo]) == 2
            assert "--profile times the local batch phases" \
                in capsys.readouterr().err

    def test_profile_rejects_stats(self, capsys):
        # The embedded counters would describe the profiler's phased
        # execution, not a normal run.
        assert main(["bench", "--scale", "tiny", "--profile",
                     "--format", "json", "--stats"]) == 2
        assert "phased execution would skew" in capsys.readouterr().err

    def test_group_size_must_be_at_least_one(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--group-size", "0"]) == 2
        assert "must be at least 1" in capsys.readouterr().err
        assert main(["bench", "--scale", "tiny",
                     "--group-size", "-3"]) == 2
        assert "must be at least 1" in capsys.readouterr().err

    def test_group_size_rejected_with_no_group(self, capsys):
        # Bounding groups and disabling grouping contradict each other;
        # refuse rather than pick a winner silently.
        assert main(["bench", "--scale", "tiny", "--no-group",
                     "--group-size", "4"]) == 2
        assert "pick one" in capsys.readouterr().err

    def test_group_flags_leave_report_bytes_unchanged(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--format", "json"]) == 0
        baseline = capsys.readouterr().out
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--group-size", "1"]) == 0
        assert capsys.readouterr().out == baseline
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--no-group"]) == 0
        assert capsys.readouterr().out == baseline

    def test_arch_and_arch_sweep_mutually_exclusive(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--arch", "examples/arch/marionette_default.json",
                     "--arch-sweep", "examples/arch"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_arch_flags_rejected_with_merge_shards(self, capsys):
        # The shard exports already name the architecture they came
        # from; an --arch flag here would be a silent no-op.
        for arch_flag in (["--arch", "examples/arch/marionette_default.json"],
                          ["--arch-sweep", "examples/arch"]):
            assert main(["bench", "--merge-shards", "x.json",
                         *arch_flag]) == 2
            assert "no effect with --merge-shards" \
                in capsys.readouterr().err

    def test_arch_sweep_rejects_single_document_modes(self, capsys):
        # --profile, --stats, and --export-shard each describe exactly
        # one run/document; a sweep emits one per variant.
        for combo, fragment in (
                (["--profile"], "--profile times one batch run"),
                (["--format", "json", "--stats"],
                 "one engine's counters"),
                (["--shard", "1/1", "--export-shard", "x.json"],
                 "one shard export per variant")):
            assert main(["bench", "--scale", "tiny",
                         "--arch-sweep", "examples/arch", *combo]) == 2
            assert fragment in capsys.readouterr().err

    def test_profile_out_requires_profile(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--profile-out", "prof.json"]) == 2
        assert "requires --profile" in capsys.readouterr().err

    def test_prune_to_budget_enforces_instead_of_warning(
            self, tmp_path, monkeypatch, capsys):
        from repro.engine.cache_admin import usage

        # A budget small enough that any real run exceeds it.
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "0.001")
        cache_dir = str(tmp_path / "cache")
        assert main(["bench", "--scale", "tiny",
                     "--cache-dir", cache_dir]) == 0
        warned = capsys.readouterr().err
        assert "warning" in warned and "over" in warned
        _entries, before = usage(cache_dir)
        assert before > 1024
        assert main(["bench", "--scale", "tiny", "--cache-dir", cache_dir,
                     "--prune-to-budget"]) == 0
        pruned = capsys.readouterr().err
        assert "pruned" in pruned and "warning" not in pruned
        _entries, after = usage(cache_dir)
        assert after <= 1024 * 1.024  # the 0.001 MiB budget, enforced

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_kernel_rejected(self, capsys):
        # Package errors surface as one-line diagnostics + exit code 2,
        # not tracebacks (same contract as the argparse-level errors).
        assert main(["simulate", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_arch_path_diagnostics_name_the_sister_flag(self, capsys):
        # A directory fed to --arch (or a file to --arch-sweep) is a
        # swapped operand, not a parse failure: exit 2, one line, and the
        # message names the flag the user actually wanted.
        assert main(["bench", "--scale", "tiny",
                     "--arch", "examples/arch"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "use --arch-sweep examples/arch" in err
        assert main([
            "bench", "--scale", "tiny",
            "--arch-sweep", "examples/arch/marionette_default.json",
        ]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "use --arch examples/arch/marionette_default.json" in err

    def test_run_arch_gets_the_same_path_diagnostic(self, capsys):
        assert main(["run", "examples/kernels/saxpy",
                     "--arch", "examples/arch"]) == 2
        assert "use --arch-sweep examples/arch" \
            in capsys.readouterr().err

    def test_kernels_rejected_with_merge_shards(self, capsys):
        assert main(["bench", "--merge-shards", "x.json",
                     "--kernels", "examples/kernels"]) == 2
        assert "--kernels has no effect with --merge-shards" \
            in capsys.readouterr().err


class TestKernelCli:
    """Exit-code contracts for ``repro run`` and ``repro kernel``."""

    def test_validate_examples_suite_exits_zero(self, capsys):
        assert main(["kernel", "validate", "examples/kernels"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok: ") == 4
        assert "valid kernel package(s)" in out

    def test_validate_invalid_package_is_one_line_exit_two(
            self, tmp_path, capsys):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "kernel.json").write_text("{not json", encoding="utf-8")
        assert main(["kernel", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_validate_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["kernel", "validate",
                     str(tmp_path / "nowhere")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_run_shipped_example_passes(self, capsys):
        assert main(["run", "examples/kernels/saxpy"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "verdict: PASS" in out

    def test_run_json_document_carries_the_verdict(self, capsys):
        assert main(["run", "examples/kernels/dot_product",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["verdict"] == "PASS"
        assert document["cycles"] > 0
        assert len(document["fingerprint"]) == 64

    def test_run_failing_package_exits_one(self, tmp_path, capsys):
        # Scaffold a known-good package, then corrupt one expected cell:
        # the run itself succeeds but the verdict is FAIL -> exit 1
        # (distinct from exit 2, which means the package never ran).
        out = tmp_path / "probe"
        assert main(["kernel", "init", "probe", "--out", str(out)]) == 0
        capsys.readouterr()
        expected = out / "expected" / "y.csv"
        lines = expected.read_text(encoding="utf-8").splitlines()
        lines[-1] = str(int(lines[-1]) + 1)
        expected.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert main(["run", str(out)]) == 1
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_run_missing_directory_exits_two(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nowhere")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_init_scaffold_validates_and_refuses_overwrite(
            self, tmp_path, capsys):
        out = tmp_path / "fresh"
        assert main(["kernel", "init", "fresh", "--out", str(out)]) == 0
        assert "wrote kernel package 'fresh'" in capsys.readouterr().out
        assert main(["kernel", "validate", str(out)]) == 0
        capsys.readouterr()
        assert main(["kernel", "init", "fresh", "--out", str(out)]) == 2
        assert "refusing to overwrite" in capsys.readouterr().err

    def test_init_from_workload_runs_and_passes(self, tmp_path, capsys):
        out = tmp_path / "sig"
        assert main(["kernel", "init", "sig", "--from", "sigmoid",
                     "--scale", "tiny", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["run", str(out)]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_bench_kernels_section_appears(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--kernels", "examples/kernels"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["experiments"]) == 10
        titles = [entry["title"] for entry in document["experiments"]]
        assert any("kernel" in title.lower() for title in titles)

    def test_bench_kernels_stream_is_byte_identical(self, capsys):
        argv = ["bench", "--scale", "tiny",
                "--kernels", "examples/kernels"]
        assert main(argv) == 0
        batch = capsys.readouterr().out
        assert main([*argv, "--stream"]) == 0
        assert capsys.readouterr().out == batch
