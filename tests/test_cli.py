"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_workloads_command(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "verified" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "gemm", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Marionette" in out and "cycles" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_experiment_fig12_tiny(self, capsys):
        assert main(["experiment", "fig12", "--scale", "tiny"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_bench_json_is_content_only_by_default(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        # Run-environment facts stay out of the report document, so
        # batch/stream/warm/shard-merged runs are byte-identical.
        assert "engine_stats" not in document and "jobs" not in document
        assert document["scale"] == "tiny" and len(
            document["experiments"]) == 9

    def test_bench_json_stats_flag_attaches_engine_stats(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--stats"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["engine_stats"]["simulations"] > 0
        assert document["engine_stats"]["traces_computed"] > 0

    def test_stats_without_json_rejected(self, capsys):
        # --stats only affects the JSON document; dropping it silently
        # for ascii/csv would hide the user's intent.
        assert main(["bench", "--scale", "tiny", "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err
        assert main(["bench", "--scale", "tiny", "--format", "csv",
                     "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err

    def test_prune_to_budget_requires_cache_dir(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--prune-to-budget"]) == 2
        assert "requires --cache-dir" in capsys.readouterr().err

    def test_profile_rejects_other_execution_modes(self, capsys):
        # --profile times the local batch phases; every other execution
        # mode would make the phase timings describe something else.
        for combo in (["--stream"],
                      ["--shard", "1/2"],
                      ["--merge-shards", "x.json"],
                      ["--dispatch", "http://127.0.0.1:1"]):
            assert main(["bench", "--scale", "tiny",
                         "--profile", *combo]) == 2
            assert "--profile times the local batch phases" \
                in capsys.readouterr().err

    def test_profile_rejects_stats(self, capsys):
        # The embedded counters would describe the profiler's phased
        # execution, not a normal run.
        assert main(["bench", "--scale", "tiny", "--profile",
                     "--format", "json", "--stats"]) == 2
        assert "phased execution would skew" in capsys.readouterr().err

    def test_arch_and_arch_sweep_mutually_exclusive(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--arch", "examples/arch/marionette_default.json",
                     "--arch-sweep", "examples/arch"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_arch_flags_rejected_with_merge_shards(self, capsys):
        # The shard exports already name the architecture they came
        # from; an --arch flag here would be a silent no-op.
        for arch_flag in (["--arch", "examples/arch/marionette_default.json"],
                          ["--arch-sweep", "examples/arch"]):
            assert main(["bench", "--merge-shards", "x.json",
                         *arch_flag]) == 2
            assert "no effect with --merge-shards" \
                in capsys.readouterr().err

    def test_arch_sweep_rejects_single_document_modes(self, capsys):
        # --profile, --stats, and --export-shard each describe exactly
        # one run/document; a sweep emits one per variant.
        for combo, fragment in (
                (["--profile"], "--profile times one batch run"),
                (["--format", "json", "--stats"],
                 "one engine's counters"),
                (["--shard", "1/1", "--export-shard", "x.json"],
                 "one shard export per variant")):
            assert main(["bench", "--scale", "tiny",
                         "--arch-sweep", "examples/arch", *combo]) == 2
            assert fragment in capsys.readouterr().err

    def test_profile_out_requires_profile(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--profile-out", "prof.json"]) == 2
        assert "requires --profile" in capsys.readouterr().err

    def test_prune_to_budget_enforces_instead_of_warning(
            self, tmp_path, monkeypatch, capsys):
        from repro.engine.cache_admin import usage

        # A budget small enough that any real run exceeds it.
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "0.001")
        cache_dir = str(tmp_path / "cache")
        assert main(["bench", "--scale", "tiny",
                     "--cache-dir", cache_dir]) == 0
        warned = capsys.readouterr().err
        assert "warning" in warned and "over" in warned
        _entries, before = usage(cache_dir)
        assert before > 1024
        assert main(["bench", "--scale", "tiny", "--cache-dir", cache_dir,
                     "--prune-to-budget"]) == 0
        pruned = capsys.readouterr().err
        assert "pruned" in pruned and "warning" not in pruned
        _entries, after = usage(cache_dir)
        assert after <= 1024 * 1.024  # the 0.001 MiB budget, enforced

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_kernel_rejected(self, capsys):
        # Package errors surface as one-line diagnostics + exit code 2,
        # not tracebacks (same contract as the argparse-level errors).
        assert main(["simulate", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err
