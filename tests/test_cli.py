"""CLI smoke tests."""

import pytest

from repro.cli import main


class TestCli:
    def test_workloads_command(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "verified" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "gemm", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Marionette" in out and "cycles" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_experiment_fig12_tiny(self, capsys):
        assert main(["experiment", "fig12", "--scale", "tiny"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_kernel_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["simulate", "nonexistent"])
