"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_workloads_command(self, capsys):
        assert main(["workloads", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "GEMM" in out and "verified" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "gemm", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Marionette" in out and "cycles" in out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_experiment_fig12_tiny(self, capsys):
        assert main(["experiment", "fig12", "--scale", "tiny"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_bench_json_is_content_only_by_default(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        # Run-environment facts stay out of the report document, so
        # batch/stream/warm/shard-merged runs are byte-identical.
        assert "engine_stats" not in document and "jobs" not in document
        assert document["scale"] == "tiny" and len(
            document["experiments"]) == 9

    def test_bench_json_stats_flag_attaches_engine_stats(self, capsys):
        assert main(["bench", "--scale", "tiny", "--format", "json",
                     "--stats"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["engine_stats"]["simulations"] > 0
        assert document["engine_stats"]["traces_computed"] > 0

    def test_stats_without_json_rejected(self, capsys):
        # --stats only affects the JSON document; dropping it silently
        # for ascii/csv would hide the user's intent.
        assert main(["bench", "--scale", "tiny", "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err
        assert main(["bench", "--scale", "tiny", "--format", "csv",
                     "--stats"]) == 2
        assert "requires --format json" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_kernel_rejected(self, capsys):
        # Package errors surface as one-line diagnostics + exit code 2,
        # not tracebacks (same contract as the argparse-level errors).
        assert main(["simulate", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err
