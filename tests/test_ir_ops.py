"""Unit tests for the opcode taxonomy and evaluation semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir.ops import (
    COMPARE_OPCODES,
    NONLINEAR_OPCODES,
    OPCODE_INFO,
    OpClass,
    Opcode,
    op_info,
)


class TestOpInfo:
    def test_every_opcode_registered(self):
        assert set(OPCODE_INFO) == set(Opcode)

    def test_meta_ops_need_no_fu(self):
        assert not op_info(Opcode.CONST).needs_fu
        assert not op_info(Opcode.INPUT).needs_fu

    def test_fu_ops_have_two_cycle_latency(self):
        for opcode, info in OPCODE_INFO.items():
            if info.needs_fu:
                assert info.latency == 2, opcode

    def test_arities(self):
        assert op_info(Opcode.ADD).arity == 2
        assert op_info(Opcode.NEG).arity == 1
        assert op_info(Opcode.SELECT).arity == 3
        assert op_info(Opcode.LOAD).arity == 1
        assert op_info(Opcode.STORE).arity == 2

    def test_compare_set(self):
        assert Opcode.LT in COMPARE_OPCODES
        assert Opcode.ADD not in COMPARE_OPCODES

    def test_nonlinear_set(self):
        assert Opcode.LOG in NONLINEAR_OPCODES
        assert Opcode.SIGMOID in NONLINEAR_OPCODES
        assert Opcode.MUL not in NONLINEAR_OPCODES

    def test_memory_class(self):
        assert op_info(Opcode.LOAD).is_memory
        assert op_info(Opcode.STORE).is_memory
        assert not op_info(Opcode.ADD).is_memory


class TestEvaluation:
    def _ev(self, opcode, *args):
        fn = op_info(opcode).evaluate
        assert fn is not None
        return fn(*args)

    def test_c_style_division_truncates_toward_zero(self):
        assert self._ev(Opcode.DIV, 7, 2) == 3
        assert self._ev(Opcode.DIV, -7, 2) == -3
        assert self._ev(Opcode.DIV, 7, -2) == -3
        assert self._ev(Opcode.DIV, -7, -2) == 3

    def test_c_style_mod_sign_of_dividend(self):
        assert self._ev(Opcode.MOD, 7, 3) == 1
        assert self._ev(Opcode.MOD, -7, 3) == -1
        assert self._ev(Opcode.MOD, 7, -3) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(IRError):
            self._ev(Opcode.DIV, 1, 0)
        with pytest.raises(IRError):
            self._ev(Opcode.MOD, 1, 0)

    def test_float_division(self):
        assert self._ev(Opcode.DIV, 1.0, 4.0) == 0.25

    def test_logic_wraps_to_32_bits(self):
        assert self._ev(Opcode.NOT, 0) == 0xFFFFFFFF
        assert self._ev(Opcode.XOR, 0xFFFFFFFF, 1) == 0xFFFFFFFE
        assert self._ev(Opcode.AND, -1, 0xF) == 0xF

    def test_shifts(self):
        assert self._ev(Opcode.SHL, 1, 31) == 0x80000000
        assert self._ev(Opcode.SHL, 1, 32) == 1  # shift amount masked to 5b
        assert self._ev(Opcode.SHR, 0x80000000, 31) == 1

    def test_compares_return_ints(self):
        assert self._ev(Opcode.LT, 1, 2) == 1
        assert self._ev(Opcode.GE, 1, 2) == 0
        assert isinstance(self._ev(Opcode.EQ, 1.0, 1.0), int)

    def test_select(self):
        assert self._ev(Opcode.SELECT, 1, 10, 20) == 10
        assert self._ev(Opcode.SELECT, 0, 10, 20) == 20

    def test_nonlinear(self):
        assert self._ev(Opcode.LOG, math.e) == pytest.approx(1.0)
        assert self._ev(Opcode.SIGMOID, 0.0) == pytest.approx(0.5)
        assert self._ev(Opcode.SQRT, 16) == pytest.approx(4.0)

    def test_min_max_abs_neg(self):
        assert self._ev(Opcode.MIN, 3, -2) == -2
        assert self._ev(Opcode.MAX, 3, -2) == 3
        assert self._ev(Opcode.ABS, -9) == 9
        assert self._ev(Opcode.NEG, 4) == -4


class TestEvaluationProperties:
    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    def test_commutative_ops(self, a, b):
        for opcode, info in OPCODE_INFO.items():
            if not info.commutative or info.evaluate is None:
                continue
            if info.arity != 2:
                continue
            assert info.evaluate(a, b) == info.evaluate(b, a), opcode

    @given(st.integers(-2**31, 2**31 - 1), st.integers(0, 63))
    def test_shift_results_fit_32_bits(self, value, amount):
        assert 0 <= op_info(Opcode.SHL).evaluate(value, amount) <= 0xFFFFFFFF
        assert 0 <= op_info(Opcode.SHR).evaluate(value, amount) <= 0xFFFFFFFF

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_div_mod_identity(self, a, b):
        div = op_info(Opcode.DIV).evaluate
        mod = op_info(Opcode.MOD).evaluate
        assert div(a, b) * b + mod(a, b) == a
