"""Paper-scale golden regression lane (slow; opt-in).

The ``small``-scale snapshots in ``test_golden_experiments.py`` catch
model drift cheaply on every run; this lane replays all nine
experiments at the paper's own workload sizes and pins them to
snapshots under ``tests/golden/paper/``.  It takes minutes, so it is
deselected by default and run as its own CI lane:

    PYTHONPATH=src python -m pytest tests/test_golden_paper.py \
        --paper-scale -q

Regenerating after an intentional change:

    PYTHONPATH=src python -m pytest tests/test_golden_paper.py \
        --paper-scale --update-golden

The comparison is exact (JSON round-trip, repr-faithful floats), same
as the small-scale lane.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.engine import Engine
from repro.experiments import report

from test_golden_experiments import SLUGS, _canonical, _first_difference

GOLDEN_DIR = Path(__file__).parent / "golden" / "paper"
SCALE = "paper"
SEED = 0

pytestmark = pytest.mark.paper_scale


@pytest.fixture(scope="module")
def results() -> Dict[str, object]:
    """All nine experiments at paper scale, run once."""
    engine = Engine()
    return dict(zip(SLUGS, report.run_all(SCALE, SEED, engine=engine)))


@pytest.mark.parametrize("slug", SLUGS)
def test_golden_paper(slug, results, request):
    payload = _canonical(results[slug])
    path = GOLDEN_DIR / f"{slug}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    assert path.exists(), (
        f"missing snapshot {path}; generate it with "
        f"pytest tests/test_golden_paper.py --paper-scale "
        f"--update-golden"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    drift = _first_difference(golden, payload)
    assert payload == golden, (
        f"{slug} drifted from its paper-scale golden snapshot (first "
        f"difference: {drift}); if intentional, regenerate with "
        f"--paper-scale --update-golden and review the diff"
    )
