"""Workload suite tests: functional correctness against references,
structural control flow forms (Table 1), sizes (Table 5), determinism."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ir import analysis
from repro.workloads import (
    ALL_WORKLOADS,
    INTENSIVE_WORKLOADS,
    NON_INTENSIVE_WORKLOADS,
    get_workload,
)

SHORTS = [w.short for w in ALL_WORKLOADS]


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(ALL_WORKLOADS) == 13
        assert len(INTENSIVE_WORKLOADS) == 10
        assert len(NON_INTENSIVE_WORKLOADS) == 3

    def test_lookup_by_name_and_short(self):
        assert get_workload("gemm") is get_workload("GEMM")
        assert get_workload("merge_sort") is get_workload("ms")

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_workload("quantum_sort")

    def test_paper_sizes_documented(self):
        for workload in ALL_WORKLOADS:
            assert workload.paper_size, workload.name

    def test_unknown_scale(self):
        with pytest.raises(ReproError):
            get_workload("gemm").instance("enormous")


@pytest.mark.parametrize("short", SHORTS)
class TestFunctionalCorrectness:
    def test_tiny_matches_reference(self, short):
        get_workload(short).instance("tiny").check()

    def test_deterministic_per_seed(self, short):
        a = get_workload(short).instance("tiny", seed=7)
        b = get_workload(short).instance("tiny", seed=7)
        for name in a.memory:
            assert np.array_equal(a.memory[name], b.memory[name])

    def test_different_seeds_differ_somewhere(self, short):
        workload = get_workload(short)
        a = workload.instance("tiny", seed=1)
        b = workload.instance("tiny", seed=2)
        assert any(
            not np.array_equal(a.memory[name], b.memory[name])
            for name in a.memory
        )


@pytest.mark.parametrize("short", [w.short for w in INTENSIVE_WORKLOADS])
def test_small_scale_matches_reference(short):
    get_workload(short).instance("small").check()


class TestControlFlowForms:
    """Table 1: each kernel exhibits its documented control flow form."""

    def test_imperfect_nests(self):
        for short in ("MS", "FFT", "VI", "NW", "HT", "CRC", "LDPC", "GEMM",
                      "SCD"):
            cdfg = get_workload(short).instance("tiny").cdfg
            assert cdfg.max_loop_depth() >= 2, short
            assert cdfg.is_imperfect(), short

    def test_flat_kernels(self):
        for short in ("ADPCM", "CO", "SI", "GP"):
            cdfg = get_workload(short).instance("tiny").cdfg
            assert cdfg.max_loop_depth() == 1, short

    def test_branch_intensity(self):
        branchy = ("MS", "VI", "NW", "HT", "CRC", "ADPCM", "SCD", "LDPC")
        for short in branchy:
            cdfg = get_workload(short).instance("tiny").cdfg
            assert len(cdfg.branch_blocks()) >= 1, short
        for short in ("GEMM", "CO", "SI", "GP"):
            cdfg = get_workload(short).instance("tiny").cdfg
            assert len(cdfg.branch_blocks()) == 0, short

    def test_adpcm_serial_branches(self):
        cdfg = get_workload("adpcm").instance("tiny").cdfg
        assert len(cdfg.branch_blocks()) >= 5

    def test_merge_sort_has_highest_ops_under_branch(self):
        fractions = {}
        for short in ("MS", "GEMM", "FFT", "VI"):
            instance = get_workload(short).instance("tiny")
            result = instance.run()
            fractions[short] = analysis.ops_under_branch_fraction(
                instance.cdfg, result.trace
            )
        assert fractions["MS"] == max(fractions.values())
        assert fractions["GEMM"] == 0.0

    def test_nonlinear_kernel_uses_nonlinear_ops(self):
        cdfg = get_workload("si").instance("tiny").cdfg
        total = sum(
            block.dfg.nonlinear_op_count() for block in cdfg.blocks
        )
        assert total >= 1


class TestPaperScaleParameters:
    """Table 5 sizes are wired in (construction only; not executed here)."""

    @pytest.mark.parametrize("short,key,value", [
        ("MS", "n", 1024),
        ("FFT", "n", 1024),
        ("VI", "states", 64),
        ("VI", "steps", 140),
        ("NW", "n", 128),
        ("HT", "h", 120),
        ("HT", "w", 180),
        ("CRC", "n", 64),
        ("ADPCM", "n", 2000),
        ("SCD", "n", 2048),
        ("LDPC", "n", 128),
        ("LDPC", "iters", 20),
        ("GEMM", "n", 64),
        ("CO", "n", 16384),
        ("SI", "n", 2048),
        ("GP", "n", 16384),
    ])
    def test_paper_sizes(self, short, key, value):
        assert get_workload(short).sizes("paper")[key] == value

    def test_paper_scale_kernels_build(self):
        # Building the CDFG at paper scale is cheap (size-independent
        # structure except bounds); execution is exercised by benchmarks.
        for workload in ALL_WORKLOADS:
            cdfg = workload.build(workload.sizes("paper"))
            cdfg.validate()
