"""Benes network tests: exhaustive small sizes, property-based large ones."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.arch.network.benes import BenesNetwork


class TestStructure:
    @pytest.mark.parametrize("n,stages,switches", [
        (2, 1, 1), (4, 3, 6), (8, 5, 20), (16, 7, 56), (64, 11, 352),
    ])
    def test_stage_and_switch_counts(self, n, stages, switches):
        net = BenesNetwork(n)
        assert net.stages == stages
        assert net.switch_count == switches

    @pytest.mark.parametrize("n", [0, 1, 3, 6, 12, 100])
    def test_non_power_of_two_rejected(self, n):
        with pytest.raises(NetworkError):
            BenesNetwork(n)


class TestRouting:
    def test_identity(self):
        net = BenesNetwork(8)
        outputs = net.simulate(net.route(range(8)), list("abcdefgh"))
        assert outputs == list("abcdefgh")

    def test_reversal(self):
        net = BenesNetwork(8)
        perm = list(range(8))[::-1]
        outputs = net.simulate(net.route(perm), list(range(8)))
        assert outputs == perm  # outputs[perm[i]] == i means outputs == perm

    def test_exhaustive_n4(self):
        net = BenesNetwork(4)
        for perm in itertools.permutations(range(4)):
            assert net.verify(list(perm)), perm

    def test_exhaustive_n8(self):
        net = BenesNetwork(8)
        for perm in itertools.permutations(range(8)):
            assert net.verify(list(perm)), perm

    def test_invalid_permutation_rejected(self):
        net = BenesNetwork(4)
        with pytest.raises(NetworkError):
            net.route([0, 0, 1, 2])
        with pytest.raises(NetworkError):
            net.route([0, 1, 2])

    def test_simulate_size_mismatch(self):
        net = BenesNetwork(4)
        config = net.route(range(4))
        with pytest.raises(NetworkError):
            net.simulate(config, [1, 2, 3])

    def test_config_size_mismatch(self):
        small = BenesNetwork(4)
        large = BenesNetwork(8)
        with pytest.raises(NetworkError):
            large.simulate(small.route(range(4)), list(range(8)))


class TestRoutingProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(16))))
    def test_any_permutation_routes_n16(self, perm):
        assert BenesNetwork(16).verify(list(perm))

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(64))))
    def test_any_permutation_routes_n64(self, perm):
        assert BenesNetwork(64).verify(list(perm))

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(16))))
    def test_rearrangeability_is_stateless(self, perm):
        """Routing one permutation then another always succeeds (the network
        is rearrangeable: each configuration is independent)."""
        net = BenesNetwork(16)
        net.route(list(perm))
        inverse = [0] * 16
        for i, o in enumerate(perm):
            inverse[o] = i
        assert net.verify(inverse)
