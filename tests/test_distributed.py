"""Distributed-subsystem tests: backends, dispatcher, failure paths.

The contract under test mirrors the engine's own invariants, lifted to
multi-machine scale:

* any ``CacheBackend`` behind a ``TraceCache`` yields the same hits and
  the same misses (foreign records are misses everywhere), and the
  tiered backend serves warm reads with zero remote calls while writing
  through so the fleet still shares every record;
* the coordinator's lease/ack protocol delivers every job's results
  exactly once — batched leases and piggybacked acks included —
  requeues crashed workers' tasks, fails a job fast on worker errors
  without touching the other jobs in the FIFO table, and scopes
  results/status by server-issued job id;
* a dispatched ``repro bench`` run is byte-identical to a local one in
  all three formats, with every functional trace computed exactly once
  across the fleet — including two drivers sharing the fleet
  concurrently;
* every failure — dead server, version skew, worker crash — surfaces as
  a one-line :class:`~repro.errors.ReproError` diagnostic (exit 2 at
  the CLI), never a traceback.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.arch.params import DEFAULT_PARAMS
from repro.cli import main
from repro.engine import (
    Engine,
    HTTPBackend,
    LocalBackend,
    MemoryBackend,
    ModelSpec,
    RunSpec,
    TraceCache,
    fingerprint,
    merge_shard_documents,
    read_shard_export,
)
from repro.engine.distributed.coordinator import Coordinator
from repro.engine.distributed.server import DistributedServer
from repro.engine.distributed.worker import (
    CoordinatorClient,
    dispatch_job,
    work_loop,
)
from repro.engine.spec import trace_cache_key
from repro.errors import (
    ConfigurationError,
    DistributedError,
    DistributedUnavailable,
)

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")

SRC_DIR = str(Path(repro.__file__).parents[1])


def _specs(scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc", "fft")
        for model in (VN, MARIONETTE)
    ]


def _payloads(specs):
    return [spec.to_payload() for spec in specs]


def _dead_url() -> str:
    """A URL on which nothing is listening (refused, not hanging)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


@contextlib.contextmanager
def _not_repro_server():
    """A live HTTP endpoint that 404s everything — not `repro serve`."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class NotRepro(BaseHTTPRequestHandler):
        def _gone(self):
            self.send_response(404)
            self.send_header("Content-Length", "0")
            self.end_headers()

        do_GET = do_PUT = do_POST = do_HEAD = _gone  # noqa: N815

        def log_message(self, *args):  # noqa: A002 - stdlib signature
            pass

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), NotRepro)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()


@pytest.fixture()
def server():
    instance = DistributedServer(
        MemoryBackend(), Coordinator(lease_timeout=30.0)
    ).start()
    yield instance
    instance.stop()


# ----------------------------------------------------------------------
# Spec wire form
# ----------------------------------------------------------------------
class TestSpecWire:
    def test_payload_roundtrip_preserves_identity(self):
        spec = RunSpec("gemm", "tiny", 3, ModelSpec.make(
            "marionette", label="X", control_network=True, agile=False,
        ), DEFAULT_PARAMS)
        back = RunSpec.from_payload(
            json.loads(json.dumps(spec.to_payload()))
        )
        assert back == spec
        assert back.fingerprint() == spec.fingerprint()

    def test_all_bench_specs_roundtrip(self):
        from repro.experiments.report import all_specs

        for spec in all_specs("tiny", 0):
            assert RunSpec.from_payload(spec.to_payload()) == spec

    def test_malformed_payload_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            RunSpec.from_payload({"workload": "gemm"})


# ----------------------------------------------------------------------
# Cache backends
# ----------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(params=["local", "memory"])
    def backend(self, request, tmp_path):
        if request.param == "local":
            return LocalBackend(tmp_path)
        return MemoryBackend()

    def test_get_put_contains_iter(self, backend):
        digest = "ab" * 32
        assert backend.get(digest) is None
        assert not backend.contains(digest)
        envelope = {"key": {"kind": "trace"}, "payload": {"x": 1}}
        backend.put(digest, envelope)
        assert backend.get(digest) == envelope
        assert backend.contains(digest)
        assert list(backend.iter_keys()) == [digest]

    def test_trace_cache_over_backend_matches_directory_store(
            self, tmp_path):
        key = trace_cache_key("gemm", "tiny", 0)
        disk = TraceCache(tmp_path / "store")
        disk.put(key, {"v": 1})
        shared = TraceCache(backend=LocalBackend(tmp_path / "store"))
        assert shared.get(key) == {"v": 1}
        assert shared.disk_hits == 1

    def test_foreign_record_is_a_miss_for_every_backend(self, backend):
        key = trace_cache_key("gemm", "tiny", 0)
        backend.put(fingerprint(key), {"not": "an envelope"})
        cache = TraceCache(backend=backend)
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_root_and_backend_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path, backend=MemoryBackend())


# ----------------------------------------------------------------------
# The coordinator protocol (no HTTP: injected clock, direct calls)
# ----------------------------------------------------------------------
class TestCoordinator:
    def _coordinator(self, timeout=60.0):
        clock = {"now": 0.0}
        coordinator = Coordinator(
            lease_timeout=timeout, clock=lambda: clock["now"]
        )
        return coordinator, clock

    def test_sims_are_blocked_until_their_trace_is_acked(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        first = coordinator.lease("w1")
        assert first["task"]["kind"] == "trace"
        # The only trace is leased; its sims are not ready yet.
        assert coordinator.lease("w2") == {"wait": True}
        assert coordinator.ack(first["id"], first["lease"], computed=True)
        assert coordinator.lease("w2")["task"]["kind"] == "sim"

    def test_results_deliver_exactly_once_with_a_cursor(self):
        coordinator, _clock = self._coordinator()
        specs = _specs()[:2]
        receipt = coordinator.submit(_payloads(specs), scale="tiny",
                                     seed=0)
        trace = coordinator.lease("w")
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        seen = []
        cursor = 0
        while True:
            batch = coordinator.results_since(receipt["job"], cursor)
            seen.extend(tuple(pair) for pair in batch["results"])
            cursor = batch["completed"]
            if batch["done"]:
                break
            response = coordinator.lease("w")
            coordinator.ack(response["id"], response["lease"],
                            result={"cycles": 1})
        assert sorted(index for index, _payload in seen) == [0, 1]
        assert len(seen) == 2

    def test_expired_lease_is_requeued_and_stale_ack_discarded(self):
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        doomed = coordinator.lease("crashed-worker")
        assert doomed["task"]["kind"] == "trace"
        clock["now"] = 11.0                       # the worker is dead
        retry = coordinator.lease("survivor")
        assert retry["task"] == doomed["task"]    # same task, new lease
        assert retry["lease"] != doomed["lease"]
        # The dead worker's ack must not count (exactly-once delivery).
        assert not coordinator.ack(doomed["id"], doomed["lease"],
                                   computed=True)
        assert coordinator.ack(retry["id"], retry["lease"], computed=True)
        stats = coordinator.status()["stats"]
        assert stats["requeues"] == 1
        assert stats["stale_acks"] == 1
        assert stats["traces_computed"] == 1

    def test_renewed_lease_outlives_the_timeout(self):
        # A slow-but-alive worker heartbeats: renewal pushes the
        # deadline out, so the task is neither requeued nor recomputed
        # and the eventual ack still counts.
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        leased = coordinator.lease("slow-worker")
        clock["now"] = 8.0
        assert coordinator.renew(leased["id"], leased["lease"])
        clock["now"] = 15.0                   # past the original deadline
        assert coordinator.lease("thief") == {"wait": True}
        assert coordinator.ack(leased["id"], leased["lease"],
                               computed=True)
        assert coordinator.status()["stats"]["requeues"] == 0

    def test_stale_renew_is_rejected(self):
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        doomed = coordinator.lease("crashed-worker")
        clock["now"] = 11.0
        retry = coordinator.lease("survivor")
        assert retry["lease"] != doomed["lease"]
        assert not coordinator.renew(doomed["id"], doomed["lease"])
        assert coordinator.renew(retry["id"], retry["lease"])

    def test_results_carry_the_job_id(self):
        coordinator, _clock = self._coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        assert coordinator.results_since(receipt["job"], 0)["job"] \
            == receipt["job"]

    def test_dead_fleet_is_observable_from_the_results_poll(self):
        # Requeue must not depend on a worker calling lease(): when the
        # whole fleet dies, the dispatch client's poll has to reclaim
        # the expired lease so it can see leased=0 and diagnose the
        # stall instead of waiting forever.
        coordinator, clock = self._coordinator(timeout=10.0)
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        coordinator.lease("doomed-worker")
        assert coordinator.status()["leased"] == 1
        clock["now"] = 11.0
        coordinator.results_since(receipt["job"], 0)
        status = coordinator.status()
        assert status["leased"] == 0
        assert status["stats"]["requeues"] == 1

    def test_worker_error_fails_the_job_fast(self):
        coordinator, _clock = self._coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:2]),
                                     scale="tiny", seed=0)
        trace = coordinator.lease("w")
        assert coordinator.ack(trace["id"], trace["lease"],
                               error="kernel exploded")
        verdict = coordinator.results_since(receipt["job"], 0)
        assert "kernel exploded" in verdict["failed"]
        assert coordinator.lease("w") == {"wait": True}

    def test_drain_tells_workers_to_shut_down(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        coordinator.drain()
        assert coordinator.lease("w") == {"shutdown": True}
        with pytest.raises(DistributedError, match="shutting down"):
            coordinator.submit([], scale="tiny", seed=0)


# ----------------------------------------------------------------------
# The multi-job table
# ----------------------------------------------------------------------
class TestMultiJob:
    def _coordinator(self, timeout=60.0):
        clock = {"now": 0.0}
        coordinator = Coordinator(
            lease_timeout=timeout, clock=lambda: clock["now"]
        )
        return coordinator, clock

    def _finish(self, coordinator, receipt):
        """Drive one job to completion through the lease protocol."""
        while True:
            batch = coordinator.results_since(receipt["job"], 0)
            if batch["done"]:
                return batch
            response = coordinator.lease("finisher")
            if "task" not in response:
                pytest.fail("job incomplete but nothing leasable")
            if response["task"]["kind"] == "trace":
                coordinator.ack(response["id"], response["lease"],
                                computed=True)
            else:
                coordinator.ack(response["id"], response["lease"],
                                result={"cycles": 1})

    def test_concurrent_submissions_queue_fifo(self):
        coordinator, _clock = self._coordinator()
        first = coordinator.submit(_payloads(_specs()[:2]),
                                   scale="tiny", seed=0)
        second = coordinator.submit(_payloads(_specs()[:2]),
                                    scale="tiny", seed=1)
        assert first["job"] != second["job"]
        assert first["position"] == 0
        assert second["position"] == 1
        # The older job's tasks are handed out first ...
        leased = coordinator.lease("w")
        assert leased["id"].startswith(first["job"])
        # ... and once it has nothing ready, the fleet spills onto the
        # younger job instead of idling (work-conserving FIFO).
        spill = coordinator.lease("w")
        assert spill["id"].startswith(second["job"])

    def test_results_are_scoped_and_complete_per_job(self):
        coordinator, _clock = self._coordinator()
        first = coordinator.submit(_payloads(_specs()[:2]),
                                   scale="tiny", seed=0)
        second = coordinator.submit(_payloads(_specs()[:3]),
                                    scale="tiny", seed=0)
        batch_one = self._finish(coordinator, first)
        batch_two = self._finish(coordinator, second)
        assert batch_one["job"] == first["job"]
        assert batch_two["job"] == second["job"]
        assert sorted(i for i, _p in batch_one["results"]) == [0, 1]
        assert sorted(i for i, _p in batch_two["results"]) == [0, 1, 2]

    def test_failure_is_isolated_to_its_job(self):
        coordinator, _clock = self._coordinator()
        doomed = coordinator.submit(_payloads(_specs()[:1]),
                                    scale="tiny", seed=0)
        healthy = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        leased = coordinator.lease("w")
        assert leased["id"].startswith(doomed["job"])
        assert coordinator.ack(leased["id"], leased["lease"],
                               error="kernel exploded")
        verdict = coordinator.results_since(doomed["job"], 0)
        assert "kernel exploded" in verdict["failed"]
        # The healthy job is untouched and still completes.
        batch = self._finish(coordinator, healthy)
        assert batch["failed"] is None
        assert batch["completed"] == 1

    def test_failure_releases_every_lease_the_job_holds(self):
        # A co-worker is mid-task on a job that another worker just
        # failed.  Its lease must be released immediately: the expiry
        # scan skips finished jobs, so a surviving lease would pin the
        # fleet-wide "leased" count forever — defeating the dispatch
        # stall diagnostic and stalling the shutdown drain.
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        trace = coordinator.lease("setup")
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        doomed = coordinator.lease("failer")
        survivor = coordinator.lease("co-worker")
        assert coordinator.status()["leased"] == 2
        assert coordinator.ack(doomed["id"], doomed["lease"],
                               error="kernel exploded")
        assert coordinator.status()["leased"] == 0
        # The co-worker's in-flight ack lands on a dead job: stale.
        assert not coordinator.ack(survivor["id"], survivor["lease"],
                                   result={"cycles": 1})

    def test_unknown_job_id_is_a_loud_error(self):
        coordinator, _clock = self._coordinator()
        with pytest.raises(DistributedError, match="unknown job"):
            coordinator.results_since("no-such-job", 0)
        with pytest.raises(DistributedError, match="unknown job"):
            coordinator.status("no-such-job")

    def test_finished_jobs_are_evicted_but_stats_survive(self):
        from repro.engine.distributed.coordinator import (
            FINISHED_JOB_RETENTION,
        )

        coordinator, _clock = self._coordinator()
        receipts = []
        for _ in range(FINISHED_JOB_RETENTION + 3):
            receipt = coordinator.submit(_payloads(_specs()[:1]),
                                         scale="tiny", seed=0)
            self._finish(coordinator, receipt)
            receipts.append(receipt)
        # The oldest finished jobs fell off the table ...
        with pytest.raises(DistributedError, match="unknown job"):
            coordinator.results_since(receipts[0]["job"], 0)
        # ... the newest is still pollable ...
        assert coordinator.results_since(receipts[-1]["job"], 0)["done"]
        # ... and the aggregate stats absorbed the evicted jobs.
        stats = coordinator.status()["stats"]
        assert stats["traces_computed"] == len(receipts)

    def test_per_job_status_view(self):
        coordinator, _clock = self._coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:2]),
                                     scale="tiny", seed=0)
        status = coordinator.status(receipt["job"])
        assert status["job"] == receipt["job"]
        assert status["total"] == 2
        assert not status["done"]
        overview = coordinator.status()
        assert [job["job"] for job in overview["jobs"]] \
            == [receipt["job"]]
        assert overview["active"] == 1


# ----------------------------------------------------------------------
# Fair-share scheduling (`repro serve --schedule fair`)
# ----------------------------------------------------------------------
class TestFairShareSchedule:
    def _coordinator(self, schedule="fair"):
        clock = {"now": 0.0}
        coordinator = Coordinator(
            lease_timeout=60.0, clock=lambda: clock["now"],
            schedule=schedule,
        )
        return coordinator, clock

    def test_unknown_schedule_rejected(self):
        with pytest.raises(DistributedError, match="schedule"):
            Coordinator(schedule="lifo")

    def test_leases_round_robin_across_active_jobs(self):
        """A long sweep submitted first must not monopolize the fleet:
        consecutive grants alternate across the active jobs.  (Each job
        has three ready trace tasks here, so under FIFO all four grants
        would go to the sweep.)"""
        coordinator, _clock = self._coordinator()
        sweep = coordinator.submit(_payloads(_specs()), scale="tiny",
                                   seed=0)
        short = coordinator.submit(_payloads(_specs()), scale="tiny",
                                   seed=1)
        owners = []
        for _ in range(4):
            response = coordinator.lease("w")
            owners.append(response["id"].split(":")[0])
        assert owners == [sweep["job"], short["job"],
                          sweep["job"], short["job"]]

    def test_fifo_remains_the_default(self):
        coordinator, _clock = self._coordinator(schedule="fifo")
        assert Coordinator().schedule == "fifo"
        first = coordinator.submit(_payloads(_specs()),
                                   scale="tiny", seed=0)
        coordinator.submit(_payloads(_specs()), scale="tiny", seed=1)
        owners = {coordinator.lease("w")["id"].split(":")[0]
                  for _ in range(2)}
        assert owners == {first["job"]}  # oldest job drains first

    def test_fair_share_is_work_conserving(self):
        """A job with nothing ready is skipped, not waited on: one job's
        whole queue drains through a fair scheduler without stalls."""
        coordinator, _clock = self._coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:2]),
                                     scale="tiny", seed=0)
        served = 0
        while True:
            response = coordinator.lease_many("w", limit=4)
            if "tasks" not in response:
                break
            for grant in response["tasks"]:
                served += 1
                if grant["task"]["kind"] == "trace":
                    coordinator.ack(grant["id"], grant["lease"],
                                    computed=True)
                else:
                    coordinator.ack(grant["id"], grant["lease"],
                                    result={"cycles": 1})
        verdict = coordinator.results_since(receipt["job"], 0)
        assert verdict["done"] and not verdict["failed"]
        assert served >= 2

    def test_batched_grants_interleave_jobs(self):
        """One lease_many round trip spreads across jobs under fair
        scheduling instead of draining the oldest job's queue."""
        coordinator, _clock = self._coordinator()
        first = coordinator.submit(_payloads(_specs()), scale="tiny",
                                   seed=0)
        second = coordinator.submit(_payloads(_specs()), scale="tiny",
                                    seed=1)
        response = coordinator.lease_many("w", limit=4)
        owners = [grant["id"].split(":")[0]
                  for grant in response["tasks"]]
        assert owners == [first["job"], second["job"],
                          first["job"], second["job"]]

    def test_schedule_is_visible_in_status(self):
        coordinator, _clock = self._coordinator()
        assert coordinator.status()["schedule"] == "fair"


# ----------------------------------------------------------------------
# Batched leases and piggybacked acks
# ----------------------------------------------------------------------
class TestBatchedLease:
    def _coordinator(self, timeout=60.0):
        clock = {"now": 0.0}
        coordinator = Coordinator(
            lease_timeout=timeout, clock=lambda: clock["now"]
        )
        return coordinator, clock

    def test_lease_many_grants_up_to_the_limit(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:4]), scale="tiny", seed=0)
        trace = coordinator.lease("w")
        assert trace["task"]["kind"] == "trace"
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        second_trace = coordinator.lease("w")
        coordinator.ack(second_trace["id"], second_trace["lease"],
                        computed=True)
        batch = coordinator.lease_many("w", 3)
        assert len(batch["tasks"]) == 3
        assert {grant["task"]["kind"] for grant in batch["tasks"]} \
            == {"sim"}
        # The leases are distinct; each ack lands exactly once.
        leases = {grant["lease"] for grant in batch["tasks"]}
        assert len(leases) == 3

    def test_batched_lease_spans_a_job_boundary(self):
        coordinator, _clock = self._coordinator()
        first = coordinator.submit(_payloads(_specs()[:1]),
                                   scale="tiny", seed=0)
        second = coordinator.submit(_payloads(_specs()[:1]),
                                    scale="tiny", seed=0)
        batch = coordinator.lease_many("w", 4)
        owners = {grant["id"].rsplit(":", 1)[0]
                  for grant in batch["tasks"]}
        assert owners == {first["job"], second["job"]}

    def test_batched_leases_preserve_exactly_once_under_requeue(self):
        # A worker leases a whole batch and crashes; the survivor
        # re-leases the tasks, and the dead worker's piggybacked acks
        # (stale tokens) are discarded one by one — every task still
        # lands exactly one result.
        coordinator, clock = self._coordinator(timeout=10.0)
        receipt = coordinator.submit(_payloads(_specs()[:2]),
                                     scale="tiny", seed=0)
        trace = coordinator.lease("setup")
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        doomed = coordinator.lease_many("doomed", 2)
        assert len(doomed["tasks"]) == 2
        clock["now"] = 11.0                      # the batch expired
        survivor = coordinator.lease_many("survivor", 2)
        assert {g["id"] for g in survivor["tasks"]} \
            == {g["id"] for g in doomed["tasks"]}
        for grant in survivor["tasks"]:
            assert coordinator.ack(grant["id"], grant["lease"],
                                   result={"cycles": 1})
        # The dead worker's batch of acks arrives late: all stale.
        for grant in doomed["tasks"]:
            assert not coordinator.ack(grant["id"], grant["lease"],
                                       result={"cycles": 999})
        batch = coordinator.results_since(receipt["job"], 0)
        assert sorted(i for i, _p in batch["results"]) == [0, 1]
        assert all(p == {"cycles": 1} for _i, p in batch["results"])
        stats = coordinator.status()["stats"]
        assert stats["requeues"] == 2
        assert stats["stale_acks"] == 2

    def test_http_lease_settles_piggybacked_acks_first(self, server):
        # One round trip: the trace ack rides on the lease call and is
        # settled *before* leasing, so the very sims it unblocks come
        # back in the same response.
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        first = client.lease("w", max_tasks=1)
        grant = first["tasks"][0]
        assert grant["task"]["kind"] == "trace"
        response = client.lease("w", max_tasks=2, acks=[
            {"id": grant["id"], "lease": grant["lease"],
             "computed": True},
        ])
        assert response["acked"] == [True]
        assert len(response["tasks"]) == 2
        assert {g["task"]["kind"] for g in response["tasks"]} == {"sim"}

    def test_http_lease_reports_stale_ack_verdicts(self, server):
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        first = client.lease("w", max_tasks=1)
        grant = first["tasks"][0]
        response = client.lease("w", max_tasks=1, acks=[
            {"id": grant["id"], "lease": "L-not-mine", "computed": True},
            {"not": "an ack"},
        ])
        assert response["acked"] == [False, False]

    def test_http_batched_renew(self, server):
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        first = client.lease("w", max_tasks=1)
        grant = first["tasks"][0]
        verdicts = client.renew_many([
            (grant["id"], grant["lease"]),
            ("bogus-task", "L-bogus"),
        ])
        assert verdicts == [True, False]

    def test_worker_cli_rejects_a_zero_lease_batch(self, capsys):
        assert main(["worker", "--connect", "http://localhost:1",
                     "--lease-batch", "0"]) == 2
        assert "--lease-batch" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The tiered (read-through) backend
# ----------------------------------------------------------------------
class RecordingBackend:
    """Wraps a backend and counts every call — the network-call meter."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = {"get": 0, "put": 0, "contains": 0, "iter_keys": 0}

    def get(self, digest):
        self.calls["get"] += 1
        return self.inner.get(digest)

    def put(self, digest, envelope):
        self.calls["put"] += 1
        self.inner.put(digest, envelope)

    def contains(self, digest):
        self.calls["contains"] += 1
        return self.inner.contains(digest)

    def iter_keys(self):
        self.calls["iter_keys"] += 1
        return self.inner.iter_keys()

    def describe(self):
        return f"recording({self.inner.describe()})"


class TestTieredBackend:
    def _tiered(self, tmp_path):
        from repro.engine.distributed.backend import TieredBackend

        remote = RecordingBackend(MemoryBackend())
        tiered = TieredBackend(LocalBackend(tmp_path / "tier"), remote)
        return tiered, remote

    def test_warm_get_performs_zero_remote_calls(self, tmp_path):
        tiered, remote = self._tiered(tmp_path)
        digest = "ab" * 32
        envelope = {"key": {"kind": "trace"}, "payload": {"x": 1}}
        remote.inner.put(digest, envelope)
        assert tiered.get(digest) == envelope       # cold: one remote GET
        assert remote.calls["get"] == 1
        assert tiered.get(digest) == envelope       # warm: served locally
        assert tiered.get(digest) == envelope
        assert remote.calls["get"] == 1             # still exactly one

    def test_put_writes_through_to_both_tiers(self, tmp_path):
        tiered, remote = self._tiered(tmp_path)
        digest = "cd" * 32
        envelope = {"key": {"kind": "trace"}, "payload": {"y": 2}}
        tiered.put(digest, envelope)
        assert remote.calls["put"] == 1
        assert remote.inner.get(digest) == envelope  # the fleet sees it
        assert tiered.local.get(digest) == envelope  # and so do we, free
        assert tiered.get(digest) == envelope
        assert remote.calls["get"] == 0

    def test_contains_falls_back_to_the_remote(self, tmp_path):
        tiered, remote = self._tiered(tmp_path)
        digest = "ef" * 32
        assert not tiered.contains(digest)
        remote.inner.put(digest, {"key": {}, "payload": {}})
        assert tiered.contains(digest)               # remote-only: found
        tiered.local.put(digest, {"key": {}, "payload": {}})
        calls_before = remote.calls["contains"]
        assert tiered.contains(digest)               # local now answers
        assert remote.calls["contains"] == calls_before

    def test_iter_keys_unions_both_tiers(self, tmp_path):
        tiered, remote = self._tiered(tmp_path)
        shared = "ab" * 32
        tiered.local.put(shared, {"key": {}, "payload": {}})
        tiered.local.put("cd" * 32, {"key": {}, "payload": {}})
        remote.inner.put(shared, {"key": {}, "payload": {}})
        remote.inner.put("ef" * 32, {"key": {}, "payload": {}})
        assert sorted(tiered.iter_keys()) \
            == sorted({shared, "cd" * 32, "ef" * 32})

    def test_trace_cache_warm_reads_skip_the_server(self, server,
                                                    tmp_path):
        # The deployment shape: an engine whose cache is tiered over
        # the live HTTP backend.  After the first read, re-reads of
        # the same record never touch the network.
        from repro.engine.distributed.backend import TieredBackend

        producer = Engine(backend=HTTPBackend(server.url))
        assert producer.ensure_trace("gemm", "tiny", 0) is True

        remote = RecordingBackend(HTTPBackend(server.url))
        tiered = TieredBackend(LocalBackend(tmp_path / "tier"), remote)
        key = trace_cache_key("gemm", "tiny", 0)
        warm_cache = TraceCache(backend=tiered)
        assert warm_cache.get(key) is not None       # cold: one HTTP GET
        assert remote.calls["get"] == 1
        # A *fresh* TraceCache (no memo) over the same tier: zero HTTP.
        rewarmed = TraceCache(backend=tiered)
        assert rewarmed.get(key) is not None
        assert remote.calls["get"] == 1

    def test_worker_with_cache_dir_populates_the_local_tier(
            self, server, tmp_path):
        tier = tmp_path / "worker-tier"
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 2.0,
                    "cache_dir": str(tier), "lease_batch": 2},
        )
        worker.start()
        landed = dict(_poll_results(client,
                                    client.status()["jobs"][0]["job"]))
        worker.join(timeout=30.0)
        assert sorted(landed) == [0, 1]
        # Everything the worker computed is in its local tier too.
        assert list(LocalBackend(tier).iter_keys())


# ----------------------------------------------------------------------
# The HTTP boundary
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_records_roundtrip_and_contains(self, server):
        backend = HTTPBackend(server.url)
        key = trace_cache_key("gemm", "tiny", 0)
        digest = fingerprint(key)
        assert backend.get(digest) is None
        backend.put(digest, {"key": dict(key), "payload": {"x": 1}})
        assert backend.contains(digest)
        assert backend.get(digest)["payload"] == {"x": 1}
        assert list(backend.iter_keys()) == [digest]

    def test_engines_share_records_live_through_the_server(self, server):
        producer = Engine(backend=HTTPBackend(server.url))
        assert producer.ensure_trace("gemm", "tiny", 0) is True
        consumer = Engine(backend=HTTPBackend(server.url))
        assert consumer.ensure_trace("gemm", "tiny", 0) is False
        assert consumer.stats.trace_cache_hits == 1

    def test_digest_mismatch_is_rejected(self, server):
        backend = HTTPBackend(server.url)
        with pytest.raises(DistributedError, match="HTTP 400"):
            backend.put("ff" * 32, {"key": {"kind": "trace"},
                                    "payload": {}})

    def test_version_skew_rejects_the_job(self, server, monkeypatch):
        import repro.engine.distributed.worker as worker_module

        monkeypatch.setattr(worker_module, "ENGINE_VERSION", -1)
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="version"):
            client.check_version()
        with pytest.raises(DistributedError, match="skew"):
            client.submit([], scale="tiny", seed=0)

    def test_queue_protocol_skew_rejects_driver_and_worker(
            self, server, monkeypatch):
        # The queue wire format is versioned separately from the cache
        # envelope format: a build from before job-scoped results /
        # batched leases must be told to upgrade, not left to livelock.
        import repro.engine.distributed.worker as worker_module
        from repro.engine.distributed.backend import http_json

        monkeypatch.setattr(worker_module, "PROTOCOL_VERSION", -1)
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="protocol"):
            client.check_version()
        with pytest.raises(DistributedError, match="protocol skew"):
            client.submit([], scale="tiny", seed=0)
        # An old worker's lease body has no "max": its very first
        # lease call fails with the upgrade diagnostic.
        with pytest.raises(DistributedError, match="upgrade the worker"):
            http_json("POST", f"{server.url}/queue/lease",
                      body={"worker": "ancient"})

    def test_export_bridges_to_the_shard_merge_path(self, server,
                                                    tmp_path):
        specs = _specs()[:2]
        fleet = Engine(backend=HTTPBackend(server.url))
        fleet.execute(specs)
        document = CoordinatorClient(server.url).export(
            scale="tiny", seed=0
        )
        path = tmp_path / "fleet-export.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        merged = merge_shard_documents([read_shard_export(path)])
        replay = Engine()
        replay.cache.preload(merged["entries"])
        results = replay.execute(specs)
        assert all(run_result.cached for run_result in results)
        assert replay.stats.simulations == 0


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_http_backend_connection_error_is_one_line(self):
        with pytest.raises(DistributedError) as excinfo:
            HTTPBackend(_dead_url(), timeout=2.0).get("ab" * 32)
        assert "\n" not in str(excinfo.value)
        assert "cannot reach" in str(excinfo.value)

    def test_worker_cli_against_dead_server_exits_2(self, capsys):
        assert main(["worker", "--connect", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_dispatch_cli_against_dead_server_exits_2(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--dispatch", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_serve_on_an_occupied_port_exits_2(self, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "cannot serve" in captured.err
        assert "Traceback" not in captured.err

    def test_non_repro_endpoint_is_not_reported_as_version_skew(self):
        with _not_repro_server() as url:
            with pytest.raises(DistributedError,
                               match="does not look like"):
                CoordinatorClient(url).check_version()

    def test_put_that_lands_nowhere_is_an_error_not_a_silent_drop(self):
        with _not_repro_server() as url:
            with pytest.raises(DistributedError, match="not stored"):
                HTTPBackend(url).put("ab" * 32, {"key": {}, "payload": {}})

    def test_rejected_ack_does_not_count_in_the_summary(self, server):
        class StaleClient(CoordinatorClient):
            """Every ack is rejected, as after a lease expiry."""

            def __init__(self, url):
                super().__init__(url)
                self.handed_out = False

            def lease(self, worker, *, max_tasks=1, acks=None):
                # Piggybacked acks all come back rejected (stale).
                verdicts = [False] * len(acks or [])
                if self.handed_out:
                    return {"shutdown": True, "acked": verdicts}
                self.handed_out = True
                return {"tasks": [{"task": {"kind": "trace",
                                            "workload": "gemm",
                                            "scale": "tiny", "seed": 0},
                                   "id": "t0", "lease": "L-stale"}],
                        "acked": verdicts}

            def ack(self, *args, **kwargs):
                return False

        fired = []
        summary = work_loop(server.url, client=StaleClient(server.url),
                            on_task=lambda kind, task: fired.append(kind))
        assert summary.traces_computed == 0
        assert summary.trace_cache_hits == 0
        assert not fired

    def test_failed_batch_siblings_are_skipped_not_computed(self, server):
        # A worker fails one task of a leased batch: the remaining
        # tasks of the *same job* are dead on arrival (the failure ack
        # released their leases), so the worker must skip them instead
        # of burning compute on acks that can only bounce as stale.
        class BatchFailer(CoordinatorClient):
            def __init__(self, url):
                super().__init__(url)
                self.handed_out = False
                self.error_acks = []
                self.piggybacked = []

            def lease(self, worker, *, max_tasks=1, acks=None):
                self.piggybacked.extend(acks or [])
                verdicts = [True] * len(acks or [])
                if self.handed_out:
                    return {"shutdown": True, "acked": verdicts}
                self.handed_out = True
                bad = {"kind": "sim", "index": 0,
                       "spec": {"workload": "gemm"}}     # malformed
                sibling = {"kind": "trace", "workload": "gemm",
                           "scale": "tiny", "seed": 0}
                return {"tasks": [
                    {"task": bad, "id": "j9-dead:s0", "lease": "L1"},
                    {"task": dict(sibling), "id": "j9-dead:t0",
                     "lease": "L2"},
                ], "acked": verdicts}

            def ack(self, task_id, lease, **kwargs):
                self.error_acks.append((task_id, kwargs.get("error")))
                return True

        client = BatchFailer(server.url)
        summary = work_loop(server.url, client=client)
        assert summary.failures == 1
        assert [task_id for task_id, _err in client.error_acks] \
            == ["j9-dead:s0"]
        # The sibling was neither computed nor acknowledged.
        assert client.piggybacked == []
        assert summary.traces_computed == 0

    def test_worker_survives_a_job_boundary(self, server):
        # A wait verdict between tasks is the job boundary where the
        # worker drops its per-job engine memos; the task after it must
        # still complete (served from the shared store, not the memo).
        task = {"kind": "trace", "workload": "gemm", "scale": "tiny",
                "seed": 0}

        class Sequencer(CoordinatorClient):
            def __init__(self, url):
                super().__init__(url)
                self.sequence = [
                    {"tasks": [{"task": dict(task), "id": "t0",
                                "lease": "L1"}]},
                    {"wait": True},
                    {"tasks": [{"task": dict(task), "id": "t1",
                                "lease": "L2"}]},
                    {"shutdown": True},
                ]

            def lease(self, worker, *, max_tasks=1, acks=None):
                response = dict(self.sequence.pop(0))
                response["acked"] = [True] * len(acks or [])
                return response

            def ack(self, *args, **kwargs):
                return True

        summary = work_loop(server.url, client=Sequencer(server.url),
                            poll=0.01)
        assert summary.traces_computed == 1
        assert summary.trace_cache_hits == 1

    def test_live_renewal_defeats_a_short_lease_timeout(self):
        # Over real HTTP: a lease renewed faster than it expires stays
        # live well past the timeout, and the ack still counts.
        server = DistributedServer(
            MemoryBackend(), Coordinator(lease_timeout=0.4)
        ).start()
        try:
            client = CoordinatorClient(server.url)
            receipt = client.submit(_payloads(_specs()[:1]),
                                    scale="tiny", seed=0)
            leased = client.lease("slow-worker")["tasks"][0]
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                assert client.renew(leased["id"], leased["lease"])
                # The driver's requeue poll must not steal the lease.
                client.results_since(receipt["job"], 0)
                time.sleep(0.1)
            assert client.ack(leased["id"], leased["lease"],
                              computed=True)
            assert client.status()["stats"]["requeues"] == 0
        finally:
            server.stop()

    def test_dispatch_rejects_results_from_a_different_job(self):
        class HijackedQueue:
            """submit() hands out job 1; results_since() serves job 2."""

            base_url = "http://hijacked"

            def check_version(self):
                return {}

            def submit(self, specs, *, scale, seed):
                return {"job": 1}

            def results_since(self, job_id, cursor):
                return {"job": 2, "results": [[0, {"cycles": 1}]],
                        "done": True, "failed": None}

        with pytest.raises(DistributedError, match="answered for job"):
            list(dispatch_job(HijackedQueue(), _payloads(_specs()[:1]),
                              scale="tiny", seed=0))

    def test_out_of_range_result_index_is_a_clean_error(self, capsys,
                                                        monkeypatch):
        def bogus_dispatch(client, specs, **kwargs):
            yield 999, {}

        monkeypatch.setattr(
            "repro.engine.distributed.worker.dispatch_job",
            bogus_dispatch,
        )
        assert main(["bench", "--scale", "tiny",
                     "--dispatch", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert "outside our" in captured.err
        assert "Traceback" not in captured.err

    def test_shutdown_keeps_serving_while_a_lease_is_in_flight(self):
        server = DistributedServer(
            MemoryBackend(), Coordinator(), shutdown_grace=10.0
        ).start()
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        leased = client.lease("slow-worker")["tasks"][0]
        client.shutdown()
        # Mid-task ack still lands (drain()'s contract) ...
        assert client.ack(leased["id"], leased["lease"], computed=True)
        # ... and the server stops soon after the last lease resolves,
        # well before the 10s grace cap.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                client.status()
            except DistributedError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept serving after its leases resolved")
        server.httpd.server_close()

    def test_worker_ctrl_c_is_a_clean_one_line_exit(self, capsys,
                                                    monkeypatch):
        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.engine.distributed.worker.work_loop", interrupted
        )
        assert main(["worker", "--connect", _dead_url()]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_job_body_is_a_400_not_a_server_crash(self, server):
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="HTTP 400"):
            client.submit([{"workload": "gemm"}], scale="tiny", seed=0)
        with pytest.raises(DistributedError, match="HTTP 400"):
            client.submit(["not-a-spec"], scale="tiny", seed=0)
        # The handler survived both rejections: the server still answers
        # and no half-submitted job was left behind.
        assert client.status()["jobs"] == []

    def test_dispatch_with_no_workers_stalls_out_with_a_diagnostic(
            self, server):
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="stalled"):
            list(dispatch_job(client, _payloads(_specs()[:1]),
                              scale="tiny", seed=0,
                              poll=0.02, stall_timeout=0.3))

    def test_crashed_worker_mid_lease_triggers_requeue(self):
        # Short leases so the test does not wait on real crash timers.
        server = DistributedServer(
            MemoryBackend(), Coordinator(lease_timeout=0.5)
        ).start()
        try:
            client = CoordinatorClient(server.url)
            specs = _specs()[:2]
            receipt = client.submit(_payloads(specs), scale="tiny",
                                    seed=0)
            # A worker leases the first task and dies without acking.
            doomed = client.lease("crashed")
            assert doomed.get("tasks")
            # A healthy worker loop finishes the whole job anyway.
            landed = {}
            poller = threading.Thread(
                target=lambda: landed.update(
                    (index, payload) for index, payload
                    in _poll_results(client, receipt["job"])
                ),
            )
            poller.start()
            summary = work_loop(server.url, poll=0.05, max_idle=2.0,
                                worker_id="survivor")
            poller.join(timeout=10.0)
            assert sorted(landed) == [0, 1]
            assert client.status()["stats"]["requeues"] >= 1
            assert summary.sims == 2
        finally:
            server.stop()

    def test_worker_task_failure_fails_the_dispatched_job(self, server):
        client = CoordinatorClient(server.url)
        bad = {"workload": "no_such_kernel", "scale": "tiny", "seed": 0,
               "model": VN.token(),
               "params": _specs()[0].to_payload()["params"]}
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 2.0},
        )
        worker.start()
        try:
            with pytest.raises(DistributedError, match="no_such_kernel"):
                list(dispatch_job(client, [bad], scale="tiny", seed=0,
                                  poll=0.05))
        finally:
            worker.join(timeout=10.0)

    def test_shutdown_drains_workers_cleanly(self, server):
        client = CoordinatorClient(server.url)
        summaries = []
        worker = threading.Thread(
            target=lambda: summaries.append(
                work_loop(server.url, poll=0.05)
            ),
        )
        worker.start()
        receipt = client.submit(_payloads(_specs()[:1]), scale="tiny",
                                seed=0)
        landed = dict(_poll_results(client, receipt["job"]))
        client.shutdown()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert summaries and summaries[0].sims == 1
        assert sorted(landed) == [0]


def _poll_results(client: CoordinatorClient, job_id: str):
    import time as _time

    cursor = 0
    while True:
        batch = client.results_since(job_id, cursor)
        for index, payload in batch["results"]:
            yield index, payload
            cursor += 1
        if batch["done"] or batch["failed"]:
            return
        _time.sleep(0.05)


# ----------------------------------------------------------------------
# The acceptance end-to-end: real worker processes, byte-identity
# ----------------------------------------------------------------------
class TestDispatchEndToEnd:
    def test_dispatched_reports_are_byte_identical(self, capsys, server,
                                                   tmp_path):
        local = {}
        for fmt in ("ascii", "json", "csv"):
            assert main(["bench", "--scale", "tiny",
                         "--format", fmt]) == 0
            local[fmt] = capsys.readouterr().out

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        # One plain worker and one exercising the WAN shape: batched
        # leases plus a tiered local cache.
        worker_flags = [
            [],
            ["--lease-batch", "3",
             "--cache-dir", str(tmp_path / "tier")],
        ]
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", server.url, "--poll", "0.05",
                 "--max-idle", "120", *flags],
                env=env, stderr=subprocess.PIPE, text=True,
            )
            for flags in worker_flags
        ]
        client = CoordinatorClient(server.url)
        try:
            for fmt in ("ascii", "json", "csv"):
                assert main(["bench", "--scale", "tiny", "--format", fmt,
                             "--dispatch", server.url]) == 0
                captured = capsys.readouterr()
                assert captured.out == local[fmt]
                # A complete dispatched working set: nothing recomputed.
                assert "warning" not in captured.err

            # Every functional trace was computed exactly once across
            # the fleet: the first job computed them all, the later two
            # jobs were pure shared-cache hits (the status stats
            # aggregate over the whole job table).
            from repro.experiments.report import all_specs

            distinct = {spec.trace_key()
                        for spec in all_specs("tiny", 0)}
            stats = client.status()["stats"]
            assert stats["traces_computed"] == len(distinct)
            assert stats["trace_cache_hits"] == 2 * len(distinct)
        finally:
            client.shutdown()
            for worker in workers:
                worker.wait(timeout=30)
        assert all(worker.returncode == 0 for worker in workers)
        fleet_traces = 0
        for worker in workers:
            tail = worker.stderr.read()
            fleet_traces += int(
                tail.rsplit("done: ", 1)[1].split(" traces computed")[0]
            )
        assert fleet_traces == len(distinct)

    def test_two_concurrent_drivers_share_one_fleet(self, server):
        # The multi-job acceptance: two drivers dispatch different
        # sweeps onto one fleet *at the same time*.  Each must receive
        # a disjoint, complete result set scoped by its job id, and
        # each assembled report must be byte-identical to the same
        # sweep run locally.
        from repro.experiments.report import all_specs, render_report

        local = {seed: render_report("tiny", seed) for seed in (0, 1)}

        reports = {}
        failures = []

        def drive(seed: int) -> None:
            try:
                client = CoordinatorClient(server.url)
                specs = all_specs("tiny", seed)
                engine = Engine(backend=HTTPBackend(server.url))
                landed = list(dispatch_job(
                    client, [spec.to_payload() for spec in specs],
                    scale="tiny", seed=seed, poll=0.02,
                ))
                # Complete: every spec index, exactly once.
                assert sorted(index for index, _payload in landed) \
                    == list(range(len(specs)))
                for index, payload in landed:
                    engine.cache.preload(
                        {fingerprint(specs[index].cache_key()): payload}
                    )
                reports[seed] = render_report("tiny", seed,
                                              engine=engine)
                # Byte-identity is only meaningful if the replay
                # recomputed nothing: the payloads all came from our
                # own job.
                assert engine.stats.simulations == 0
            except BaseException as error:  # noqa: BLE001 - re-raised
                failures.append(error)

        fleet = [
            threading.Thread(
                target=work_loop, args=(server.url,),
                kwargs={"poll": 0.05, "max_idle": 10.0,
                        "lease_batch": 2, "worker_id": f"fleet-{n}"},
            )
            for n in (1, 2)
        ]
        drivers = [threading.Thread(target=drive, args=(seed,))
                   for seed in (0, 1)]
        for thread in fleet + drivers:
            thread.start()
        for thread in drivers:
            thread.join(timeout=300.0)
        for thread in fleet:
            thread.join(timeout=300.0)
        assert not failures, failures[0]
        assert reports[0] == local[0]
        assert reports[1] == local[1]

    def test_dispatched_arch_sweep_matches_local_sweep(self, capsys,
                                                       server):
        # The sweep's per-variant params travel inside the dispatched
        # spec payloads, so a fleet that knows nothing about arch files
        # still prices every variant correctly.
        sweep_dir = str(Path(SRC_DIR).parent / "examples" / "arch")
        assert main(["bench", "--scale", "tiny",
                     "--arch-sweep", sweep_dir]) == 0
        local = capsys.readouterr().out
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 60.0},
        )
        worker.start()
        try:
            assert main(["bench", "--scale", "tiny",
                         "--arch-sweep", sweep_dir,
                         "--dispatch", server.url]) == 0
            assert capsys.readouterr().out == local
        finally:
            CoordinatorClient(server.url).shutdown()
            worker.join(timeout=30.0)

    def test_dispatch_stream_prints_progress_and_identical_report(
            self, capsys, server):
        assert main(["bench", "--scale", "tiny"]) == 0
        batch = capsys.readouterr().out
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 30.0},
        )
        worker.start()
        try:
            assert main(["bench", "--scale", "tiny", "--stream",
                         "--dispatch", server.url]) == 0
            captured = capsys.readouterr()
            assert captured.out == batch
            progress = [line for line in captured.err.splitlines()
                        if line.startswith("[")]
            assert progress and "cycles" in progress[0]
        finally:
            CoordinatorClient(server.url).shutdown()
            worker.join(timeout=20.0)


class TestDispatchFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["bench", "--dispatch", "http://x", "--shard", "1/2"],
        ["bench", "--dispatch", "http://x", "--merge-shards", "a.json"],
        ["bench", "--dispatch", "http://x", "--jobs", "4"],
        ["bench", "--dispatch", "http://x", "--cache-dir", "/tmp/c"],
        ["bench", "--dispatch", "http://x", "--format", "json",
         "--stats"],
    ])
    def test_no_effect_combinations_are_rejected(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fleet reliability: heartbeat race, reconnect backoff, wire contracts
# ----------------------------------------------------------------------
class TestFleetReliability:
    @pytest.fixture()
    def fast_backoff(self, monkeypatch):
        """Millisecond-scale reconnect backoff, so tests do not sleep."""
        from repro.engine.distributed import worker as worker_module

        monkeypatch.setattr(worker_module, "RECONNECT_BASE_DELAY", 0.001)
        monkeypatch.setattr(worker_module, "RECONNECT_MAX_DELAY", 0.002)

    def test_malformed_batch_renew_entry_is_a_400(self, server):
        # Wire contract: the batch form rejects a malformed entry with
        # 400 exactly like the single form.  The old behaviour — a
        # False verdict — read as "lease gone" to the heartbeat loop,
        # which then stopped renewing *healthy* leases and turned one
        # buggy renew body into a fleet-wide recompute storm.
        from repro.engine.distributed.backend import http_json

        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        grant = client.lease("w", max_tasks=1)["tasks"][0]
        with pytest.raises(DistributedError, match="HTTP 400"):
            http_json("POST", f"{server.url}/queue/renew", body={
                "renews": [
                    {"id": grant["id"], "lease": grant["lease"]},
                    {"not": "a renew"},
                ],
            })
        # Well-formed-but-unknown entries still map to False verdicts
        # (stale is an answer, not a client bug) ...
        assert client.renew_many([
            (grant["id"], grant["lease"]), ("bogus-task", "L-bogus"),
        ]) == [True, False]
        # ... and the rejected call did not touch the healthy lease.
        assert client.ack(grant["id"], grant["lease"], computed=True)

    def test_finished_job_is_evicted_at_done_time_not_next_submit(
            self, monkeypatch):
        from repro.engine.distributed import coordinator as module

        monkeypatch.setattr(module, "FINISHED_JOB_RETENTION", 0)
        coordinator = Coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        trace = coordinator.lease("w")
        assert coordinator.ack(trace["id"], trace["lease"],
                               computed=True)
        sim = coordinator.lease("w")
        assert coordinator.ack(sim["id"], sim["lease"],
                               result={"cycles": 1})
        # The completing ack itself ran the retention sweep: on a quiet
        # serve there may never be a next submit to trigger it, and
        # until then the job would pin its results payloads in RAM.
        assert coordinator.status()["jobs"] == []
        with pytest.raises(DistributedError, match="unknown job"):
            coordinator.results_since(receipt["job"], 0)
        # Lifetime stats survived the eviction.
        assert coordinator.status()["stats"]["traces_computed"] == 1

    def test_failed_job_is_evicted_at_fail_time_too(self, monkeypatch):
        from repro.engine.distributed import coordinator as module

        monkeypatch.setattr(module, "FINISHED_JOB_RETENTION", 0)
        coordinator = Coordinator()
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        grant = coordinator.lease("w")
        assert coordinator.ack(grant["id"], grant["lease"],
                               error="boom")
        assert coordinator.status()["jobs"] == []

    def test_heartbeat_survives_pop_while_renew(self, monkeypatch):
        # Regression hammer for the `held` data race: the renew thread
        # snapshots the dict every millisecond while the main loop pops
        # hundreds of entries.  Unsynchronized, this dies with
        # "RuntimeError: dictionary changed size during iteration" —
        # silently, in a daemon thread, taking the heartbeat (and then
        # every lease in the batch) with it.
        class RacyClient:
            base_url = "stub://racy"

            def __init__(self, batch=400, rounds=3):
                self.batch, self.rounds = batch, rounds
                self.round = 0

            def check_version(self):
                return {"lease_timeout": 0.003}   # ~1ms renew interval

            def lease(self, worker, max_tasks=1, acks=None):
                self.round += 1
                if self.round > self.rounds:
                    return {"shutdown": True, "acked": []}
                return {"acked": [], "tasks": [
                    {"task": {"kind": "sim", "index": i,
                              "spec": {"malformed": True}},
                     "id": f"j{self.round}-x:s{i}",
                     "lease": f"L{self.round}.{i}"}
                    for i in range(self.batch)
                ]}

            def renew_many(self, leases):
                return [True] * len(leases)

            def ack(self, task_id, lease, **_kwargs):
                return True

        crashed = []
        monkeypatch.setattr(
            threading, "excepthook",
            lambda args, _record=crashed: _record.append(args),
        )
        summary = work_loop("stub://racy", client=RacyClient(),
                            poll=0.001, worker_id="racer")
        assert not crashed, (
            f"heartbeat thread died: {crashed[0].exc_type.__name__}: "
            f"{crashed[0].exc_value}"
        )
        # One malformed spec fails each round's job; the siblings are
        # skipped (popped from `held`) — which is the hammer itself.
        assert summary.failures == 3

    def test_server_death_mid_response_is_transport_class(self):
        # A SIGKILLed serve can die between sending its headers and
        # finishing the body; urllib surfaces that as
        # http.client.IncompleteRead — an HTTPException, *not* an
        # OSError.  It must map to DistributedUnavailable (retryable)
        # like every other flavour of "the server went away": the
        # restart-survival lane caught a worker dying on the raw
        # traceback instead of riding the restart out.
        from repro.engine.distributed.backend import http_json

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def half_answer():
            conn, _addr = listener.accept()
            conn.recv(65536)
            conn.sendall(b"HTTP/1.0 200 OK\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: 100\r\n\r\n{\"tr")
            conn.close()

        thread = threading.Thread(target=half_answer, daemon=True)
        thread.start()
        try:
            with pytest.raises(DistributedUnavailable):
                http_json("GET", f"http://127.0.0.1:{port}/health",
                          timeout=10.0)
        finally:
            thread.join(timeout=10)
            listener.close()

    def test_worker_rides_out_a_transient_outage(self, fast_backoff):
        class FlakyClient:
            base_url = "stub://flaky"

            def __init__(self, failures=4):
                self.failures = failures
                self.calls = 0

            def check_version(self):
                return {"lease_timeout": 30.0}

            def lease(self, worker, max_tasks=1, acks=None):
                self.calls += 1
                if self.calls <= self.failures:
                    raise DistributedUnavailable("server restarting")
                return {"shutdown": True, "acked": []}

        client = FlakyClient()
        work_loop("stub://flaky", client=client, poll=0.001,
                  reconnect=30.0)
        assert client.calls == 5   # 4 failures ridden out, then done

    def test_worker_gives_up_after_the_outage_window(self,
                                                     fast_backoff):
        class DeadClient:
            base_url = "stub://dead"
            calls = 0

            def check_version(self):
                return {"lease_timeout": 30.0}

            def lease(self, worker, max_tasks=1, acks=None):
                self.calls += 1
                raise DistributedUnavailable("still gone")

        with pytest.raises(DistributedUnavailable, match="still gone"):
            work_loop("stub://dead", client=DeadClient(), poll=0.001,
                      reconnect=0.05)

    def test_reconnect_zero_fails_on_the_first_transport_error(self):
        class DeadClient:
            base_url = "stub://dead"
            calls = 0

            def check_version(self):
                return {"lease_timeout": 30.0}

            def lease(self, worker, max_tasks=1, acks=None):
                self.calls += 1
                raise DistributedUnavailable("gone")

        client = DeadClient()
        with pytest.raises(DistributedUnavailable):
            work_loop("stub://dead", client=client, poll=0.001,
                      reconnect=0.0)
        assert client.calls == 1

    def test_protocol_errors_are_never_retried(self, fast_backoff):
        # "unknown job", version skew, malformed bodies: retrying
        # cannot fix those, so they must pass straight through the
        # reconnect machinery however generous the window.
        class RejectingClient:
            base_url = "stub://reject"
            calls = 0

            def check_version(self):
                return {"lease_timeout": 30.0}

            def lease(self, worker, max_tasks=1, acks=None):
                self.calls += 1
                raise DistributedError("queue protocol skew")

        client = RejectingClient()
        with pytest.raises(DistributedError, match="protocol skew"):
            work_loop("stub://reject", client=client, poll=0.001,
                      reconnect=3600.0)
        assert client.calls == 1

    def test_dispatch_poll_rides_out_an_outage(self, fast_backoff):
        class FlakyQueue:
            base_url = "stub://flaky"

            def __init__(self):
                self.polls = 0

            def check_version(self):
                return {}

            def submit(self, specs, *, scale, seed):
                return {"job": "j1-x"}

            def results_since(self, job_id, cursor):
                self.polls += 1
                if self.polls <= 3:
                    raise DistributedUnavailable("server restarting")
                return {"job": "j1-x",
                        "results": [[0, {"cycles": 1}]],
                        "done": True, "failed": None}

        landed = list(dispatch_job(
            FlakyQueue(), _payloads(_specs()[:1]), scale="tiny",
            seed=0, poll=0.001, reconnect=30.0,
        ))
        assert landed == [(0, {"cycles": 1})]

    def test_dispatch_poll_gives_up_after_the_window(self,
                                                     fast_backoff):
        class DeadQueue:
            base_url = "stub://dead"

            def check_version(self):
                return {}

            def submit(self, specs, *, scale, seed):
                return {"job": "j1-x"}

            def results_since(self, job_id, cursor):
                raise DistributedUnavailable("still gone")

        with pytest.raises(DistributedUnavailable, match="still gone"):
            list(dispatch_job(
                DeadQueue(), _payloads(_specs()[:1]), scale="tiny",
                seed=0, poll=0.001, reconnect=0.05,
            ))
