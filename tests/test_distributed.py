"""Distributed-subsystem tests: backends, dispatcher, failure paths.

The contract under test mirrors the engine's own invariants, lifted to
multi-machine scale:

* any ``CacheBackend`` behind a ``TraceCache`` yields the same hits and
  the same misses (foreign records are misses everywhere);
* the coordinator's lease/ack protocol delivers every result exactly
  once, requeues crashed workers' tasks, and fails jobs fast on worker
  errors;
* a dispatched ``repro bench`` run is byte-identical to a local one in
  all three formats, with every functional trace computed exactly once
  across the fleet;
* every failure — dead server, version skew, worker crash — surfaces as
  a one-line :class:`~repro.errors.ReproError` diagnostic (exit 2 at
  the CLI), never a traceback.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.arch.params import DEFAULT_PARAMS
from repro.cli import main
from repro.engine import (
    Engine,
    HTTPBackend,
    LocalBackend,
    MemoryBackend,
    ModelSpec,
    RunSpec,
    TraceCache,
    fingerprint,
    merge_shard_documents,
    read_shard_export,
)
from repro.engine.distributed.coordinator import Coordinator
from repro.engine.distributed.server import DistributedServer
from repro.engine.distributed.worker import (
    CoordinatorClient,
    dispatch_job,
    work_loop,
)
from repro.engine.spec import trace_cache_key
from repro.errors import ConfigurationError, DistributedError

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")

SRC_DIR = str(Path(repro.__file__).parents[1])


def _specs(scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc", "fft")
        for model in (VN, MARIONETTE)
    ]


def _payloads(specs):
    return [spec.to_payload() for spec in specs]


def _dead_url() -> str:
    """A URL on which nothing is listening (refused, not hanging)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


@contextlib.contextmanager
def _not_repro_server():
    """A live HTTP endpoint that 404s everything — not `repro serve`."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class NotRepro(BaseHTTPRequestHandler):
        def _gone(self):
            self.send_response(404)
            self.send_header("Content-Length", "0")
            self.end_headers()

        do_GET = do_PUT = do_POST = do_HEAD = _gone  # noqa: N815

        def log_message(self, *args):  # noqa: A002 - stdlib signature
            pass

    httpd = ThreadingHTTPServer(("127.0.0.1", 0), NotRepro)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    try:
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()


@pytest.fixture()
def server():
    instance = DistributedServer(
        MemoryBackend(), Coordinator(lease_timeout=30.0)
    ).start()
    yield instance
    instance.stop()


# ----------------------------------------------------------------------
# Spec wire form
# ----------------------------------------------------------------------
class TestSpecWire:
    def test_payload_roundtrip_preserves_identity(self):
        spec = RunSpec("gemm", "tiny", 3, ModelSpec.make(
            "marionette", label="X", control_network=True, agile=False,
        ), DEFAULT_PARAMS)
        back = RunSpec.from_payload(
            json.loads(json.dumps(spec.to_payload()))
        )
        assert back == spec
        assert back.fingerprint() == spec.fingerprint()

    def test_all_bench_specs_roundtrip(self):
        from repro.experiments.report import all_specs

        for spec in all_specs("tiny", 0):
            assert RunSpec.from_payload(spec.to_payload()) == spec

    def test_malformed_payload_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            RunSpec.from_payload({"workload": "gemm"})


# ----------------------------------------------------------------------
# Cache backends
# ----------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(params=["local", "memory"])
    def backend(self, request, tmp_path):
        if request.param == "local":
            return LocalBackend(tmp_path)
        return MemoryBackend()

    def test_get_put_contains_iter(self, backend):
        digest = "ab" * 32
        assert backend.get(digest) is None
        assert not backend.contains(digest)
        envelope = {"key": {"kind": "trace"}, "payload": {"x": 1}}
        backend.put(digest, envelope)
        assert backend.get(digest) == envelope
        assert backend.contains(digest)
        assert list(backend.iter_keys()) == [digest]

    def test_trace_cache_over_backend_matches_directory_store(
            self, tmp_path):
        key = trace_cache_key("gemm", "tiny", 0)
        disk = TraceCache(tmp_path / "store")
        disk.put(key, {"v": 1})
        shared = TraceCache(backend=LocalBackend(tmp_path / "store"))
        assert shared.get(key) == {"v": 1}
        assert shared.disk_hits == 1

    def test_foreign_record_is_a_miss_for_every_backend(self, backend):
        key = trace_cache_key("gemm", "tiny", 0)
        backend.put(fingerprint(key), {"not": "an envelope"})
        cache = TraceCache(backend=backend)
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_root_and_backend_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TraceCache(tmp_path, backend=MemoryBackend())


# ----------------------------------------------------------------------
# The coordinator protocol (no HTTP: injected clock, direct calls)
# ----------------------------------------------------------------------
class TestCoordinator:
    def _coordinator(self, timeout=60.0):
        clock = {"now": 0.0}
        coordinator = Coordinator(
            lease_timeout=timeout, clock=lambda: clock["now"]
        )
        return coordinator, clock

    def test_sims_are_blocked_until_their_trace_is_acked(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        first = coordinator.lease("w1")
        assert first["task"]["kind"] == "trace"
        # The only trace is leased; its sims are not ready yet.
        assert coordinator.lease("w2") == {"wait": True}
        assert coordinator.ack(first["id"], first["lease"], computed=True)
        assert coordinator.lease("w2")["task"]["kind"] == "sim"

    def test_results_deliver_exactly_once_with_a_cursor(self):
        coordinator, _clock = self._coordinator()
        specs = _specs()[:2]
        coordinator.submit(_payloads(specs), scale="tiny", seed=0)
        trace = coordinator.lease("w")
        coordinator.ack(trace["id"], trace["lease"], computed=True)
        seen = []
        cursor = 0
        while True:
            batch = coordinator.results_since(cursor)
            seen.extend(tuple(pair) for pair in batch["results"])
            cursor = batch["completed"]
            if batch["done"]:
                break
            response = coordinator.lease("w")
            coordinator.ack(response["id"], response["lease"],
                            result={"cycles": 1})
        assert sorted(index for index, _payload in seen) == [0, 1]
        assert len(seen) == 2

    def test_expired_lease_is_requeued_and_stale_ack_discarded(self):
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        doomed = coordinator.lease("crashed-worker")
        assert doomed["task"]["kind"] == "trace"
        clock["now"] = 11.0                       # the worker is dead
        retry = coordinator.lease("survivor")
        assert retry["task"] == doomed["task"]    # same task, new lease
        assert retry["lease"] != doomed["lease"]
        # The dead worker's ack must not count (exactly-once delivery).
        assert not coordinator.ack(doomed["id"], doomed["lease"],
                                   computed=True)
        assert coordinator.ack(retry["id"], retry["lease"], computed=True)
        stats = coordinator.status()["stats"]
        assert stats["requeues"] == 1
        assert stats["stale_acks"] == 1
        assert stats["traces_computed"] == 1

    def test_renewed_lease_outlives_the_timeout(self):
        # A slow-but-alive worker heartbeats: renewal pushes the
        # deadline out, so the task is neither requeued nor recomputed
        # and the eventual ack still counts.
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        leased = coordinator.lease("slow-worker")
        clock["now"] = 8.0
        assert coordinator.renew(leased["id"], leased["lease"])
        clock["now"] = 15.0                   # past the original deadline
        assert coordinator.lease("thief") == {"wait": True}
        assert coordinator.ack(leased["id"], leased["lease"],
                               computed=True)
        assert coordinator.status()["stats"]["requeues"] == 0

    def test_stale_renew_is_rejected(self):
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        doomed = coordinator.lease("crashed-worker")
        clock["now"] = 11.0
        retry = coordinator.lease("survivor")
        assert retry["lease"] != doomed["lease"]
        assert not coordinator.renew(doomed["id"], doomed["lease"])
        assert coordinator.renew(retry["id"], retry["lease"])

    def test_results_carry_the_job_id(self):
        coordinator, _clock = self._coordinator()
        receipt = coordinator.submit(_payloads(_specs()[:1]),
                                     scale="tiny", seed=0)
        assert coordinator.results_since(0)["job"] == receipt["job"]

    def test_dead_fleet_is_observable_from_the_results_poll(self):
        # Requeue must not depend on a worker calling lease(): when the
        # whole fleet dies, the dispatch client's poll has to reclaim
        # the expired lease so it can see leased=0 and diagnose the
        # stall instead of waiting forever.
        coordinator, clock = self._coordinator(timeout=10.0)
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        coordinator.lease("doomed-worker")
        assert coordinator.status()["leased"] == 1
        clock["now"] = 11.0
        coordinator.results_since(0)
        status = coordinator.status()
        assert status["leased"] == 0
        assert status["stats"]["requeues"] == 1

    def test_worker_error_fails_the_job_fast(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:2]), scale="tiny", seed=0)
        trace = coordinator.lease("w")
        assert coordinator.ack(trace["id"], trace["lease"],
                               error="kernel exploded")
        verdict = coordinator.results_since(0)
        assert "kernel exploded" in verdict["failed"]
        assert coordinator.lease("w") == {"wait": True}

    def test_second_job_rejected_while_one_runs(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        with pytest.raises(DistributedError, match="still running"):
            coordinator.submit(_payloads(_specs()[:1]), scale="tiny",
                               seed=0)

    def test_drain_tells_workers_to_shut_down(self):
        coordinator, _clock = self._coordinator()
        coordinator.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        coordinator.drain()
        assert coordinator.lease("w") == {"shutdown": True}
        with pytest.raises(DistributedError, match="shutting down"):
            coordinator.submit([], scale="tiny", seed=0)


# ----------------------------------------------------------------------
# The HTTP boundary
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_records_roundtrip_and_contains(self, server):
        backend = HTTPBackend(server.url)
        key = trace_cache_key("gemm", "tiny", 0)
        digest = fingerprint(key)
        assert backend.get(digest) is None
        backend.put(digest, {"key": dict(key), "payload": {"x": 1}})
        assert backend.contains(digest)
        assert backend.get(digest)["payload"] == {"x": 1}
        assert list(backend.iter_keys()) == [digest]

    def test_engines_share_records_live_through_the_server(self, server):
        producer = Engine(backend=HTTPBackend(server.url))
        assert producer.ensure_trace("gemm", "tiny", 0) is True
        consumer = Engine(backend=HTTPBackend(server.url))
        assert consumer.ensure_trace("gemm", "tiny", 0) is False
        assert consumer.stats.trace_cache_hits == 1

    def test_digest_mismatch_is_rejected(self, server):
        backend = HTTPBackend(server.url)
        with pytest.raises(DistributedError, match="HTTP 400"):
            backend.put("ff" * 32, {"key": {"kind": "trace"},
                                    "payload": {}})

    def test_version_skew_rejects_the_job(self, server, monkeypatch):
        import repro.engine.distributed.worker as worker_module

        monkeypatch.setattr(worker_module, "ENGINE_VERSION", -1)
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="version"):
            client.check_version()
        with pytest.raises(DistributedError, match="skew"):
            client.submit([], scale="tiny", seed=0)

    def test_export_bridges_to_the_shard_merge_path(self, server,
                                                    tmp_path):
        specs = _specs()[:2]
        fleet = Engine(backend=HTTPBackend(server.url))
        fleet.execute(specs)
        document = CoordinatorClient(server.url).export(
            scale="tiny", seed=0
        )
        path = tmp_path / "fleet-export.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        merged = merge_shard_documents([read_shard_export(path)])
        replay = Engine()
        replay.cache.preload(merged["entries"])
        results = replay.execute(specs)
        assert all(run_result.cached for run_result in results)
        assert replay.stats.simulations == 0


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_http_backend_connection_error_is_one_line(self):
        with pytest.raises(DistributedError) as excinfo:
            HTTPBackend(_dead_url(), timeout=2.0).get("ab" * 32)
        assert "\n" not in str(excinfo.value)
        assert "cannot reach" in str(excinfo.value)

    def test_worker_cli_against_dead_server_exits_2(self, capsys):
        assert main(["worker", "--connect", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_dispatch_cli_against_dead_server_exits_2(self, capsys):
        assert main(["bench", "--scale", "tiny",
                     "--dispatch", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_serve_on_an_occupied_port_exits_2(self, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            assert main(["serve", "--port", str(port)]) == 2
        finally:
            blocker.close()
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "cannot serve" in captured.err
        assert "Traceback" not in captured.err

    def test_non_repro_endpoint_is_not_reported_as_version_skew(self):
        with _not_repro_server() as url:
            with pytest.raises(DistributedError,
                               match="does not look like"):
                CoordinatorClient(url).check_version()

    def test_put_that_lands_nowhere_is_an_error_not_a_silent_drop(self):
        with _not_repro_server() as url:
            with pytest.raises(DistributedError, match="not stored"):
                HTTPBackend(url).put("ab" * 32, {"key": {}, "payload": {}})

    def test_rejected_ack_does_not_count_in_the_summary(self, server):
        class StaleClient(CoordinatorClient):
            """Every ack is rejected, as after a lease expiry."""

            def __init__(self, url):
                super().__init__(url)
                self.handed_out = False

            def lease(self, worker):
                if self.handed_out:
                    return {"shutdown": True}
                self.handed_out = True
                return {"task": {"kind": "trace", "workload": "gemm",
                                 "scale": "tiny", "seed": 0},
                        "id": "t0", "lease": "L-stale"}

            def ack(self, *args, **kwargs):
                return False

        fired = []
        summary = work_loop(server.url, client=StaleClient(server.url),
                            on_task=lambda kind, task: fired.append(kind))
        assert summary.traces_computed == 0
        assert summary.trace_cache_hits == 0
        assert not fired

    def test_worker_survives_a_job_boundary(self, server):
        # A wait verdict between tasks is the job boundary where the
        # worker drops its per-job engine memos; the task after it must
        # still complete (served from the shared store, not the memo).
        task = {"kind": "trace", "workload": "gemm", "scale": "tiny",
                "seed": 0}

        class Sequencer(CoordinatorClient):
            def __init__(self, url):
                super().__init__(url)
                self.sequence = [
                    {"task": dict(task), "id": "t0", "lease": "L1"},
                    {"wait": True},
                    {"task": dict(task), "id": "t1", "lease": "L2"},
                    {"shutdown": True},
                ]

            def lease(self, worker):
                return self.sequence.pop(0)

            def ack(self, *args, **kwargs):
                return True

        summary = work_loop(server.url, client=Sequencer(server.url),
                            poll=0.01)
        assert summary.traces_computed == 1
        assert summary.trace_cache_hits == 1

    def test_live_renewal_defeats_a_short_lease_timeout(self):
        # Over real HTTP: a lease renewed faster than it expires stays
        # live well past the timeout, and the ack still counts.
        server = DistributedServer(
            MemoryBackend(), Coordinator(lease_timeout=0.4)
        ).start()
        try:
            client = CoordinatorClient(server.url)
            client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
            leased = client.lease("slow-worker")
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                assert client.renew(leased["id"], leased["lease"])
                client.results_since(0)       # the driver's requeue poll
                time.sleep(0.1)
            assert client.ack(leased["id"], leased["lease"],
                              computed=True)
            assert client.status()["stats"]["requeues"] == 0
        finally:
            server.stop()

    def test_dispatch_rejects_results_from_a_different_job(self):
        class HijackedQueue:
            """submit() hands out job 1; results_since() serves job 2."""

            def check_version(self):
                return {}

            def submit(self, specs, *, scale, seed):
                return {"job": 1}

            def results_since(self, cursor):
                return {"job": 2, "results": [[0, {"cycles": 1}]],
                        "done": True, "failed": None}

        with pytest.raises(DistributedError, match="another driver"):
            list(dispatch_job(HijackedQueue(), _payloads(_specs()[:1]),
                              scale="tiny", seed=0))

    def test_out_of_range_result_index_is_a_clean_error(self, capsys,
                                                        monkeypatch):
        def bogus_dispatch(client, specs, **kwargs):
            yield 999, {}

        monkeypatch.setattr(
            "repro.engine.distributed.worker.dispatch_job",
            bogus_dispatch,
        )
        assert main(["bench", "--scale", "tiny",
                     "--dispatch", _dead_url()]) == 2
        captured = capsys.readouterr()
        assert "outside our" in captured.err
        assert "Traceback" not in captured.err

    def test_shutdown_keeps_serving_while_a_lease_is_in_flight(self):
        server = DistributedServer(
            MemoryBackend(), Coordinator(), shutdown_grace=10.0
        ).start()
        client = CoordinatorClient(server.url)
        client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        leased = client.lease("slow-worker")
        client.shutdown()
        # Mid-task ack still lands (drain()'s contract) ...
        assert client.ack(leased["id"], leased["lease"], computed=True)
        # ... and the server stops soon after the last lease resolves,
        # well before the 10s grace cap.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                client.status()
            except DistributedError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept serving after its leases resolved")
        server.httpd.server_close()

    def test_worker_ctrl_c_is_a_clean_one_line_exit(self, capsys,
                                                    monkeypatch):
        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.engine.distributed.worker.work_loop", interrupted
        )
        assert main(["worker", "--connect", _dead_url()]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_job_body_is_a_400_not_a_server_crash(self, server):
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="HTTP 400"):
            client.submit([{"workload": "gemm"}], scale="tiny", seed=0)
        with pytest.raises(DistributedError, match="HTTP 400"):
            client.submit(["not-a-spec"], scale="tiny", seed=0)
        # The handler survived both rejections: the server still answers
        # and no half-submitted job was left behind.
        assert client.status()["job"] is None

    def test_dispatch_with_no_workers_stalls_out_with_a_diagnostic(
            self, server):
        client = CoordinatorClient(server.url)
        with pytest.raises(DistributedError, match="stalled"):
            list(dispatch_job(client, _payloads(_specs()[:1]),
                              scale="tiny", seed=0,
                              poll=0.02, stall_timeout=0.3))

    def test_crashed_worker_mid_lease_triggers_requeue(self):
        # Short leases so the test does not wait on real crash timers.
        server = DistributedServer(
            MemoryBackend(), Coordinator(lease_timeout=0.5)
        ).start()
        try:
            client = CoordinatorClient(server.url)
            specs = _specs()[:2]
            client.submit(_payloads(specs), scale="tiny", seed=0)
            # A worker leases the first task and dies without acking.
            doomed = client.lease("crashed")
            assert "task" in doomed
            # A healthy worker loop finishes the whole job anyway.
            landed = {}
            poller = threading.Thread(
                target=lambda: landed.update(
                    (index, payload) for index, payload
                    in _poll_results(client)
                ),
            )
            poller.start()
            summary = work_loop(server.url, poll=0.05, max_idle=2.0,
                                worker_id="survivor")
            poller.join(timeout=10.0)
            assert sorted(landed) == [0, 1]
            assert client.status()["stats"]["requeues"] >= 1
            assert summary.sims == 2
        finally:
            server.stop()

    def test_worker_task_failure_fails_the_dispatched_job(self, server):
        client = CoordinatorClient(server.url)
        bad = {"workload": "no_such_kernel", "scale": "tiny", "seed": 0,
               "model": VN.token(),
               "params": _specs()[0].to_payload()["params"]}
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 2.0},
        )
        worker.start()
        try:
            with pytest.raises(DistributedError, match="no_such_kernel"):
                list(dispatch_job(client, [bad], scale="tiny", seed=0,
                                  poll=0.05))
        finally:
            worker.join(timeout=10.0)

    def test_shutdown_drains_workers_cleanly(self, server):
        client = CoordinatorClient(server.url)
        summaries = []
        worker = threading.Thread(
            target=lambda: summaries.append(
                work_loop(server.url, poll=0.05)
            ),
        )
        worker.start()
        client.submit(_payloads(_specs()[:1]), scale="tiny", seed=0)
        landed = dict(_poll_results(client))
        client.shutdown()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert summaries and summaries[0].sims == 1
        assert sorted(landed) == [0]


def _poll_results(client: CoordinatorClient):
    import time as _time

    cursor = 0
    while True:
        batch = client.results_since(cursor)
        for index, payload in batch["results"]:
            yield index, payload
            cursor += 1
        if batch["done"] or batch["failed"]:
            return
        _time.sleep(0.05)


# ----------------------------------------------------------------------
# The acceptance end-to-end: real worker processes, byte-identity
# ----------------------------------------------------------------------
class TestDispatchEndToEnd:
    def test_dispatched_reports_are_byte_identical(self, capsys, server):
        local = {}
        for fmt in ("ascii", "json", "csv"):
            assert main(["bench", "--scale", "tiny",
                         "--format", fmt]) == 0
            local[fmt] = capsys.readouterr().out

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", server.url, "--poll", "0.05",
                 "--max-idle", "120"],
                env=env, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        client = CoordinatorClient(server.url)
        try:
            for fmt in ("ascii", "json", "csv"):
                assert main(["bench", "--scale", "tiny", "--format", fmt,
                             "--dispatch", server.url]) == 0
                captured = capsys.readouterr()
                assert captured.out == local[fmt]
                # A complete dispatched working set: nothing recomputed.
                assert "warning" not in captured.err

            # Every functional trace was computed exactly once across
            # the fleet: the first job computed them all, the later two
            # were pure shared-cache hits.
            from repro.experiments.report import all_specs

            distinct = {spec.trace_key()
                        for spec in all_specs("tiny", 0)}
            stats = client.status()["stats"]
            assert stats["traces_computed"] == 0
            assert stats["trace_cache_hits"] == len(distinct)
        finally:
            client.shutdown()
            for worker in workers:
                worker.wait(timeout=30)
        assert all(worker.returncode == 0 for worker in workers)
        fleet_traces = 0
        for worker in workers:
            tail = worker.stderr.read()
            fleet_traces += int(
                tail.rsplit("done: ", 1)[1].split(" traces computed")[0]
            )
        assert fleet_traces == len(distinct)

    def test_dispatch_stream_prints_progress_and_identical_report(
            self, capsys, server):
        assert main(["bench", "--scale", "tiny"]) == 0
        batch = capsys.readouterr().out
        worker = threading.Thread(
            target=work_loop, args=(server.url,),
            kwargs={"poll": 0.05, "max_idle": 30.0},
        )
        worker.start()
        try:
            assert main(["bench", "--scale", "tiny", "--stream",
                         "--dispatch", server.url]) == 0
            captured = capsys.readouterr()
            assert captured.out == batch
            progress = [line for line in captured.err.splitlines()
                        if line.startswith("[")]
            assert progress and "cycles" in progress[0]
        finally:
            CoordinatorClient(server.url).shutdown()
            worker.join(timeout=20.0)


class TestDispatchFlagValidation:
    @pytest.mark.parametrize("argv", [
        ["bench", "--dispatch", "http://x", "--shard", "1/2"],
        ["bench", "--dispatch", "http://x", "--merge-shards", "a.json"],
        ["bench", "--dispatch", "http://x", "--jobs", "4"],
        ["bench", "--dispatch", "http://x", "--cache-dir", "/tmp/c"],
        ["bench", "--dispatch", "http://x", "--format", "json",
         "--stats"],
    ])
    def test_no_effect_combinations_are_rejected(self, argv, capsys):
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err
