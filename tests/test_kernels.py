"""External kernel packages: format laws, ingestion, engine integration.

The ``repro-kernel`` v1 on-disk format is a public contract, so the
tests are organised around its laws:

* **round trips** — document -> package -> document is the identity on
  canonical form; save -> load preserves the content fingerprint; the
  fingerprint moves iff any content (manifest, program, memory cell)
  moves;
* **diagnostics** — every malformed input (unknown keys, version skew,
  torn JSON/CSV, undeclared arrays, undefined operands, shape
  mismatches) is a one-line :class:`ConfigurationError` naming its
  source, never a traceback;
* **ingestion equivalence** — an exported built-in workload, run as an
  external package, is bit-identical between the event-driven and naive
  simulators, and the interpreter agrees with the committed expected
  images;
* **engine identity** — the package fingerprint rides inside the
  workload token, so the cache, the shard partition, and the dispatch
  wire form all distinguish kernels by content with no extra plumbing;
* **shipped examples** — every package under ``examples/kernels/`` is
  valid, canonically formatted, distinct, and passes on the array
  (CI for the examples, like ``examples/arch/``).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.engine.executor import Engine
from repro.engine.export import (
    merge_shard_documents,
    read_shard_export,
    shard_export_document,
    write_shard_export,
)
from repro.engine.spec import RunSpec, shard_of
from repro.errors import ConfigurationError, EngineError
from repro.kernels import (
    KernelWorkload,
    from_document,
    load_kernel,
    load_kernel_suite,
    package_from_workload,
    register,
    resolve,
    run_kernel,
    save_kernel,
)
from repro.kernels.bench import KERNEL_BENCH_MODELS, kernel_specs
from repro.kernels.registry import _PACKAGES, _WORKLOADS
from repro.workloads import get_workload
from repro.workloads.base import outputs_match
from repro.workloads.sigmoid import Sigmoid

EXAMPLES_DIR = Path(__file__).parents[1] / "examples" / "kernels"


def _one_line(excinfo) -> str:
    text = str(excinfo.value)
    assert "\n" not in text, f"diagnostic spans lines: {text!r}"
    return text


def _saxpy_document(name: str = "saxpy_t", n: int = 8):
    x = list(range(n))
    y = [2] * n
    return {
        "schema": "repro-kernel", "version": 1,
        "name": name,
        "scale_hint": "tiny",
        "params": {"n": n, "a": 3},
        "loop": {"var": "i", "start": 0, "stop": "n", "step": 1},
        "arrays": [
            {"name": "x", "shape": [n], "dtype": "int64",
             "role": "input"},
            {"name": "y", "shape": [n], "dtype": "int64",
             "role": "inout"},
        ],
        "program": [
            ["t0", "load", "x", "i"],
            ["t1", "mul", "a", "t0"],
            ["t2", "load", "y", "i"],
            ["t3", "add", "t1", "t2"],
            ["", "store", "y", "i", "t3"],
        ],
        "memory": {"x": x, "y": y},
        "expected": {"y": [3 * xi + 2 for xi in x]},
    }


# ----------------------------------------------------------------------
# Format laws
# ----------------------------------------------------------------------
class TestFormatLaws:
    def test_document_roundtrip_is_identity(self):
        package = from_document(_saxpy_document())
        document = package.to_document()
        again = from_document(document)
        assert again.to_document() == document
        assert again.fingerprint() == package.fingerprint()

    def test_save_load_preserves_fingerprint(self, tmp_path):
        package = from_document(_saxpy_document())
        save_kernel(package, tmp_path / "k")
        loaded = load_kernel(tmp_path / "k")
        assert loaded.fingerprint() == package.fingerprint()
        assert loaded.to_document() == package.to_document()

    def test_save_load_with_program_in_manifest(self, tmp_path):
        package = from_document(_saxpy_document())
        save_kernel(package, tmp_path / "k", program_in_manifest=True)
        assert not (tmp_path / "k" / "instructions.csv").exists()
        assert load_kernel(
            tmp_path / "k").fingerprint() == package.fingerprint()

    def test_fingerprint_moves_with_any_memory_cell(self):
        base = from_document(_saxpy_document())
        edited_doc = _saxpy_document()
        edited_doc["memory"]["x"][3] += 1
        edited = from_document(edited_doc)
        assert edited.fingerprint() != base.fingerprint()

    def test_fingerprint_moves_with_the_name(self):
        a = from_document(_saxpy_document("one"))
        b = from_document(_saxpy_document("two"))
        assert a.fingerprint() != b.fingerprint()

    def test_workload_token_carries_the_full_fingerprint(self):
        package = from_document(_saxpy_document())
        token = package.workload_token()
        assert token == f"kernel:{package.name}@{package.fingerprint()}"

    def test_expected_optional_interpreter_fills_in(self):
        document = _saxpy_document()
        del document["expected"]
        package = from_document(document)
        instance = KernelWorkload(package).instance("tiny")
        assert outputs_match(
            instance.expected["y"],
            np.asarray([3 * xi + 2 for xi in range(8)]), 0.0,
        )


# ----------------------------------------------------------------------
# Diagnostics: one line, naming the source
# ----------------------------------------------------------------------
class TestDiagnostics:
    def _bad(self, mutate, source="<t>"):
        document = _saxpy_document()
        mutate(document)
        with pytest.raises(ConfigurationError) as error:
            from_document(document, source)
        return _one_line(error)

    def test_unknown_key(self):
        text = self._bad(lambda d: d.update(flavour="spicy"))
        assert "flavour" in text and "<t>" in text

    def test_version_skew(self):
        text = self._bad(lambda d: d.update(version=99))
        assert "99" in text and "version" in text

    def test_wrong_schema(self):
        text = self._bad(lambda d: d.update(schema="not-a-kernel"))
        assert "not-a-kernel" in text

    def test_undeclared_memory_image(self):
        text = self._bad(lambda d: d["memory"].update(z=[1]))
        assert "z" in text

    def test_shape_mismatch(self):
        text = self._bad(lambda d: d["memory"].update(x=[1, 2]))
        assert "x" in text

    def test_undefined_operand(self):
        text = self._bad(
            lambda d: d["program"].__setitem__(1, ["t1", "mul", "a", "t9"])
        )
        assert "t9" in text

    def test_unknown_opcode(self):
        text = self._bad(
            lambda d: d["program"].__setitem__(
                1, ["t1", "frobnicate", "a", "t0"])
        )
        assert "frobnicate" in text

    def test_program_without_store(self):
        text = self._bad(
            lambda d: d.update(program=[["t0", "load", "x", "i"]])
        )
        assert "store" in text

    def test_torn_manifest_json(self, tmp_path):
        root = tmp_path / "k"
        save_kernel(from_document(_saxpy_document()), root)
        (root / "kernel.json").write_text("{ torn", encoding="utf-8")
        with pytest.raises(ConfigurationError) as error:
            load_kernel(root)
        assert "kernel.json" in _one_line(error)

    def test_torn_memory_csv(self, tmp_path):
        root = tmp_path / "k"
        save_kernel(from_document(_saxpy_document()), root)
        (root / "memory" / "x.csv").write_text("1,two,3",
                                               encoding="utf-8")
        with pytest.raises(ConfigurationError) as error:
            load_kernel(root)
        assert "x.csv" in _one_line(error)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError) as error:
            load_kernel(tmp_path / "absent")
        assert "absent" in _one_line(error)

    def test_suite_directory_hint_in_load_kernel(self, tmp_path):
        save_kernel(from_document(_saxpy_document("inner")),
                    tmp_path / "suite" / "inner")
        with pytest.raises(ConfigurationError) as error:
            load_kernel(tmp_path / "suite")
        text = _one_line(error)
        assert "inner" in text and "--kernels" in text

    def test_suite_rejects_duplicate_names(self, tmp_path):
        save_kernel(from_document(_saxpy_document("dup")),
                    tmp_path / "suite" / "a")
        save_kernel(from_document(_saxpy_document("dup")),
                    tmp_path / "suite" / "b")
        with pytest.raises(ConfigurationError) as error:
            load_kernel_suite(tmp_path / "suite")
        assert "dup" in _one_line(error)


# ----------------------------------------------------------------------
# Workload registry + suite lookup
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_workload_resolves_registered_tokens(self):
        package = from_document(_saxpy_document("reg_probe"))
        token = register(package)
        workload = get_workload(token)
        assert workload.short == token
        assert workload.name == "reg_probe"

    def test_unregistered_token_is_a_configuration_error(self):
        missing = "kernel:ghost@" + "0" * 64
        with pytest.raises(ConfigurationError) as error:
            resolve(missing)
        assert "not registered" in _one_line(error)

    def test_unknown_workload_lists_all_names(self):
        with pytest.raises(ConfigurationError) as error:
            get_workload("no_such_kernel")
        text = _one_line(error)
        assert "no_such_kernel" in text
        for name in ("gemm", "crc", "sigmoid", "fft"):
            assert name in text


# ----------------------------------------------------------------------
# Exporter + differential ingestion (satellite: event == naive)
# ----------------------------------------------------------------------
class TestExportAndDifferential:
    def test_exported_sigmoid_roundtrips_and_verifies(self):
        package = package_from_workload(Sigmoid(), "tiny", seed=0)
        assert package.name == "sigmoid"
        again = from_document(package.to_document())
        assert again.fingerprint() == package.fingerprint()

    def test_unexportable_workload_is_one_line(self):
        with pytest.raises(ConfigurationError) as error:
            package_from_workload(get_workload("gemm"), "tiny")
        assert "gemm" in _one_line(error)

    def test_all_strategies_are_bit_identical(self):
        package = package_from_workload(Sigmoid(), "tiny", seed=0)
        reports = {
            strategy: run_kernel(package, strategy=strategy)
            for strategy in ("event", "naive", "batch")
        }
        assert all(r.passed for r in reports.values())
        documents = {
            strategy: {k: v for k, v in report.to_document().items()
                       if k != "strategy"}
            for strategy, report in reports.items()
        }
        assert documents["event"] == documents["naive"]
        assert documents["batch"] == documents["naive"]

    def test_failing_package_reports_first_bad_index(self):
        document = _saxpy_document()
        document["expected"]["y"][5] += 7
        report = run_kernel(from_document(document))
        assert not report.passed
        verdict, = report.verdicts
        assert verdict.first_bad_index == 5
        assert report.to_document()["verdict"] == "FAIL"


# ----------------------------------------------------------------------
# Engine identity: cache, shards, wire
# ----------------------------------------------------------------------
class TestEngineIdentity:
    def test_rerun_is_a_pure_cache_hit(self, tmp_path):
        package = from_document(_saxpy_document("cache_probe"))
        specs = kernel_specs([package])
        cold = Engine(cache_dir=tmp_path / "cache")
        cold.execute(specs)
        assert cold.stats.simulations == len(specs)
        warm = Engine(cache_dir=tmp_path / "cache")
        warm.execute(kernel_specs([package]))
        assert warm.stats.simulations == 0
        assert warm.stats.sim_cache_hits == len(specs)

    def test_editing_one_csv_cell_misses_the_cache(self, tmp_path):
        package = from_document(_saxpy_document("cell_probe"))
        save_kernel(package, tmp_path / "k")
        engine = Engine(cache_dir=tmp_path / "cache")
        engine.execute(kernel_specs([load_kernel(tmp_path / "k")]))
        assert engine.stats.simulations == len(KERNEL_BENCH_MODELS)

        # One edited input cell (and the matching expected cell, so the
        # package still verifies — identity, not correctness, is what
        # this test probes).
        for region, delta in (("memory", 1), ("expected", 3)):
            path = tmp_path / "k" / region
            path = path / ("x.csv" if region == "memory" else "y.csv")
            lines = path.read_text(encoding="utf-8").splitlines()
            lines[-1] = str(int(lines[-1]) + delta)
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        edited = load_kernel(tmp_path / "k")
        assert edited.fingerprint() != package.fingerprint()
        again = Engine(cache_dir=tmp_path / "cache")
        again.execute(kernel_specs([edited]))
        assert again.stats.sim_cache_hits == 0
        assert again.stats.simulations == len(KERNEL_BENCH_MODELS)

    def test_fingerprint_is_inside_the_cache_key(self):
        a = from_document(_saxpy_document("key_probe"))
        edited_doc = _saxpy_document("key_probe")
        edited_doc["memory"]["y"][0] += 1
        b = from_document(edited_doc)
        spec_a = kernel_specs([a])[0]
        spec_b = kernel_specs([b])[0]
        assert spec_a.cache_key() != spec_b.cache_key()
        assert spec_a.fingerprint() != spec_b.fingerprint()

    def test_shard_coordinate_is_content_derived(self):
        package = from_document(_saxpy_document("shard_probe"))
        specs = kernel_specs([package])
        assignments = [shard_of(spec, 3) for spec in specs]
        assert all(0 <= shard < 3 for shard in assignments)
        # Pure function of content: recomputing agrees.
        assert assignments == [shard_of(spec, 3) for spec in specs]

    def test_payload_ships_the_document_and_roundtrips(self):
        package = from_document(_saxpy_document("wire_probe"))
        spec = kernel_specs([package])[0]
        payload = json.loads(json.dumps(spec.to_payload()))
        assert payload["kernel"]["name"] == "wire_probe"
        assert RunSpec.from_payload(payload) == spec

    def test_payload_naming_a_different_kernel_is_refused(self):
        package = from_document(_saxpy_document("lie_probe"))
        spec = kernel_specs([package])[0]
        payload = spec.to_payload()
        payload = dict(payload,
                       workload="kernel:lie_probe@" + "f" * 64)
        with pytest.raises(ConfigurationError) as error:
            RunSpec.from_payload(payload)
        assert "ships the kernel document" in _one_line(error)

    def test_parallel_jobs_match_serial(self, tmp_path):
        package = from_document(_saxpy_document("jobs_probe"))
        serial = Engine(cache_dir=tmp_path / "a")
        parallel = Engine(cache_dir=tmp_path / "b", jobs=4)
        specs = kernel_specs([package])
        serial_cycles = [r.cycles for r in serial.execute(specs)]
        parallel_cycles = [r.cycles for r in parallel.execute(specs)]
        assert serial_cycles == parallel_cycles
        streamed = Engine(cache_dir=tmp_path / "c", jobs=4)
        pairs = sorted(streamed.stream(specs))
        assert [pair[1].cycles for pair in pairs] == serial_cycles


# ----------------------------------------------------------------------
# Shard exports carry the kernel suite
# ----------------------------------------------------------------------
class TestShardExports:
    def _export(self, engine, kernels, shard, tmp_path, name):
        document = shard_export_document(
            engine, scale="tiny", seed=0, shard=shard, kernels=kernels,
        )
        path = tmp_path / name
        write_shard_export(path, document)
        return read_shard_export(path)

    def test_kernels_survive_the_export_roundtrip(self, tmp_path):
        package = from_document(_saxpy_document("exp_probe"))
        engine = Engine(cache_dir=tmp_path / "cache")
        engine.execute(kernel_specs([package]))
        document = self._export(engine, [package], (1, 1), tmp_path,
                                "s.json")
        assert document["kernels"] == [package.to_document()]
        merged = merge_shard_documents([document])
        assert merged["kernels"] == [package.to_document()]

    def test_disagreeing_kernel_suites_refuse_to_merge(self, tmp_path):
        a = from_document(_saxpy_document("suite_a"))
        b = from_document(_saxpy_document("suite_b"))
        engine = Engine(cache_dir=tmp_path / "cache")
        engine.execute(kernel_specs([a]) + kernel_specs([b]))
        doc_a = self._export(engine, [a], (1, 2), tmp_path, "a.json")
        doc_b = self._export(engine, [b], (2, 2), tmp_path, "b.json")
        with pytest.raises(EngineError) as error:
            merge_shard_documents([doc_a, doc_b])
        assert "kernel suite" in str(error.value)

    def test_malformed_kernels_stanza_is_rejected(self, tmp_path):
        engine = Engine(cache_dir=tmp_path / "cache")
        document = shard_export_document(engine, scale="tiny", seed=0)
        document["kernels"] = "not-a-list"
        path = tmp_path / "bad.json"
        write_shard_export(path, document)
        with pytest.raises(EngineError) as error:
            read_shard_export(path)
        assert "kernels" in str(error.value)


# ----------------------------------------------------------------------
# Dispatch: the document travels the wire, not the filesystem
# ----------------------------------------------------------------------
class TestDispatchWire:
    def test_worker_with_empty_registry_runs_a_shipped_kernel(self):
        from repro.engine.distributed.backend import MemoryBackend
        from repro.engine.distributed.coordinator import Coordinator
        from repro.engine.distributed.server import DistributedServer
        from repro.engine.distributed.worker import (
            CoordinatorClient,
            dispatch_job,
            work_loop,
        )

        package = from_document(_saxpy_document("wire_run"))
        specs = kernel_specs([package])[:2]
        payloads = [spec.to_payload() for spec in specs]

        # The receiving side has never seen the package: wipe the
        # process-wide registry so the worker must rebuild it from the
        # wire documents alone (what a fresh remote process would do).
        saved_packages = dict(_PACKAGES)
        saved_workloads = dict(_WORKLOADS)
        _PACKAGES.clear()
        _WORKLOADS.clear()
        server = DistributedServer(
            MemoryBackend(), Coordinator(lease_timeout=30.0)
        ).start()
        try:
            worker = threading.Thread(
                target=lambda: work_loop(server.url, poll=0.02,
                                         max_idle=30.0),
            )
            worker.start()
            client = CoordinatorClient(server.url)
            try:
                landed = dict(dispatch_job(
                    client, payloads, scale="tiny", seed=0,
                ))
            finally:
                client.shutdown()
                worker.join(timeout=15.0)
            assert sorted(landed) == [0, 1]
            assert all(payload["cycles"] > 0
                       for payload in landed.values())
        finally:
            server.stop()
            _PACKAGES.update(saved_packages)
            _WORKLOADS.update(saved_workloads)


# ----------------------------------------------------------------------
# The shipped examples (CI for examples/kernels/)
# ----------------------------------------------------------------------
class TestShippedExamples:
    def test_directory_holds_the_documented_suite(self):
        entries = load_kernel_suite(EXAMPLES_DIR)
        names = [package.name for _path, package in entries]
        assert len(names) >= 3
        assert "sigmoid" in names      # exported from a built-in
        assert "saxpy" in names        # hand-written

    def test_names_are_unique_and_fingerprints_distinct(self):
        entries = load_kernel_suite(EXAMPLES_DIR)
        names = [package.name for _path, package in entries]
        prints = [package.fingerprint() for _path, package in entries]
        assert len(set(names)) == len(names)
        assert len(set(prints)) == len(prints)

    def test_every_example_is_in_canonical_form(self, tmp_path):
        # A hand-edited file that drifts from save_kernel's formatting
        # would break save/load round-trip diffs; keep them canonical.
        for path, package in load_kernel_suite(EXAMPLES_DIR):
            fresh = tmp_path / path.name
            save_kernel(
                package, fresh,
                program_in_manifest=not (
                    path / "instructions.csv").exists(),
            )
            committed = {p.relative_to(path): p
                         for p in sorted(path.rglob("*")) if p.is_file()}
            rewritten = {p.relative_to(fresh): p
                         for p in sorted(fresh.rglob("*")) if p.is_file()}
            assert sorted(committed) == sorted(rewritten), \
                f"{path}: file set is not canonical"
            for rel, committed_path in committed.items():
                assert committed_path.read_bytes() == \
                    rewritten[rel].read_bytes(), \
                    f"{path / rel} is not canonically formatted"

    def test_exported_sigmoid_example_matches_the_workload(self):
        committed = load_kernel(EXAMPLES_DIR / "sigmoid")
        regenerated = package_from_workload(Sigmoid(), "tiny", seed=0)
        assert committed.fingerprint() == regenerated.fingerprint()

    @pytest.mark.parametrize("strategy", ["event", "naive", "batch"])
    def test_every_example_passes_on_the_array(self, strategy):
        for _path, package in load_kernel_suite(EXAMPLES_DIR):
            report = run_kernel(package, strategy=strategy)
            assert report.passed, (
                f"{package.name} under {strategy}: "
                f"{report.to_document()}"
            )

    def test_examples_grade_identically_under_every_strategy(self):
        """Cross-strategy property: each shipped package produces the
        same graded document (modulo the strategy tag) under the naive,
        event, and batch steppers, and its engine cache identity is a
        pure function of content — the strategy never enters the
        fingerprint-addressed records."""
        for _path, package in load_kernel_suite(EXAMPLES_DIR):
            documents = {}
            for strategy in ("naive", "event", "batch"):
                report = run_kernel(package, strategy=strategy)
                document = report.to_document()
                assert document.pop("strategy") == strategy
                documents[strategy] = document
            assert documents["event"] == documents["naive"], package.name
            assert documents["batch"] == documents["naive"], package.name
            # Fingerprint-addressed identity: cache keys name content
            # only, so a record written under one strategy is the same
            # record any other strategy would address.
            for spec in kernel_specs([package]):
                key = json.dumps(spec.cache_key(), sort_keys=True)
                assert "strategy" not in key
                assert spec.fingerprint() == spec.fingerprint()
