"""Ablation experiments + model behaviour across array sizes."""

import pytest

from repro.arch.params import DEFAULT_PARAMS
from repro.baselines import MarionetteModel, VonNeumannModel
from repro.baselines.base import KernelInstance
from repro.experiments import ablations
from repro.workloads import get_workload


class TestAblationExperiments:
    def test_array_size_sweep_shapes(self):
        result = ablations.array_size_sweep("tiny", sizes=(2, 4))
        assert len(result.rows) == 2
        assert all(r["speedup"] > 1.0 for r in result.rows)

    def test_mesh_latency_sweep_monotonic(self):
        result = ablations.mesh_latency_sweep("tiny", latencies=(2, 6, 10))
        gains = [r["cn_speedup_geomean"] for r in result.rows]
        assert gains == sorted(gains)

    def test_fifo_depth_sweep_correct_at_depth_one(self):
        result = ablations.fifo_depth_sweep(depths=(1, 4))
        assert all(r["correct"] for r in result.rows)

    def test_run_all(self):
        results = ablations.run("tiny")
        assert len(results) == 3


class TestScaling:
    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_models_work_at_any_array_size(self, size):
        params = DEFAULT_PARAMS.scaled(size, size)
        instance = get_workload("gemm").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        von_neumann = VonNeumannModel(params).simulate(kernel)
        marionette = MarionetteModel(params).simulate(kernel)
        assert von_neumann.cycles >= marionette.cycles
        assert marionette.n_pes == size * size

    def test_more_pes_never_slower_for_marionette(self):
        instance = get_workload("gemm").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        cycles = []
        for size in (2, 4, 8):
            params = DEFAULT_PARAMS.scaled(size, size)
            cycles.append(MarionetteModel(params).simulate(kernel).cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_rectangular_array(self):
        params = DEFAULT_PARAMS.scaled(2, 8)
        instance = get_workload("si").instance("tiny")
        kernel = KernelInstance(instance.cdfg, instance.run().trace)
        result = MarionetteModel(params).simulate(kernel)
        assert result.cycles > 0
