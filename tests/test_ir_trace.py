"""Unit + property tests for DynamicTrace run aggregation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.trace import DynamicTrace, Run


class TestRecording:
    def test_consecutive_executions_merge_into_runs(self):
        trace = DynamicTrace("t")
        for block in (1, 1, 1, 2, 1, 1):
            trace.record(block)
        trace.finish()
        assert trace.runs == [Run(1, 3), Run(2, 1), Run(1, 2)]

    def test_exec_counts(self):
        trace = DynamicTrace("t")
        for block in (0, 1, 0, 1, 1):
            trace.record(block)
        trace.finish()
        assert trace.exec_counts == {0: 2, 1: 3}
        assert trace.total_block_execs == 5

    def test_edge_counts(self):
        trace = DynamicTrace("t")
        for block in (0, 1, 2, 1, 2):
            trace.record(block)
        trace.finish()
        assert trace.edge_counts[(0, 1)] == 1
        assert trace.edge_counts[(1, 2)] == 2
        assert trace.edge_counts[(2, 1)] == 1

    def test_finish_idempotent_on_empty(self):
        trace = DynamicTrace("t")
        trace.finish()
        assert trace.runs == []
        assert trace.transitions() == 0

    def test_mean_run_length(self):
        trace = DynamicTrace("t")
        for block in (1, 1, 1, 2, 1):
            trace.record(block)
        trace.finish()
        assert trace.mean_run_length(1) == pytest.approx(2.0)
        assert trace.mean_run_length(9) == 0.0

    def test_validate_consistency(self):
        trace = DynamicTrace("t")
        for block in (3, 3, 4):
            trace.record(block)
        trace.finish()
        trace.validate()


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=200))
    def test_runs_always_reconstruct_sequence(self, sequence):
        trace = DynamicTrace("fuzz")
        for block in sequence:
            trace.record(block)
        trace.finish()
        rebuilt = []
        for run in trace.runs:
            rebuilt.extend([run.block] * run.count)
        assert rebuilt == sequence
        trace.validate()

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=200))
    def test_no_adjacent_runs_share_block(self, sequence):
        trace = DynamicTrace("fuzz")
        for block in sequence:
            trace.record(block)
        trace.finish()
        for a, b in zip(trace.runs, trace.runs[1:]):
            assert a.block != b.block

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=100))
    def test_edges_equal_run_boundaries(self, sequence):
        trace = DynamicTrace("fuzz")
        for block in sequence:
            trace.record(block)
        trace.finish()
        assert sum(trace.edge_counts.values()) == trace.transitions()
