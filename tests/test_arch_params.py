"""Architecture parameter validation and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.params import ArchParams, DEFAULT_PARAMS
from repro.arch.topology import Coord, Grid


class TestArchParams:
    def test_default_matches_prototype(self):
        assert DEFAULT_PARAMS.n_pes == 16
        assert DEFAULT_PARAMS.nonlinear_pes == 4
        assert DEFAULT_PARAMS.frequency_mhz == 500
        assert DEFAULT_PARAMS.technology_nm == 28
        assert DEFAULT_PARAMS.sram_kb == 16
        assert DEFAULT_PARAMS.inst_scratchpad_kb == 2

    def test_relative_timings_match_paper(self):
        # Section 2.3 / Fig. 4(d).
        assert DEFAULT_PARAMS.t_config == 1
        assert DEFAULT_PARAMS.t_execute == 2
        assert DEFAULT_PARAMS.ctrl_net_latency == 1
        assert DEFAULT_PARAMS.data_net_latency == 6

    def test_ccu_round_trip_is_two_traversals_plus_work(self):
        expected = 2 * DEFAULT_PARAMS.data_net_latency + 1 + 1
        assert DEFAULT_PARAMS.ccu_round_trip == expected

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            ArchParams(rows=0)
        with pytest.raises(ConfigurationError):
            ArchParams(cols=-1)

    def test_too_many_nonlinear_pes(self):
        with pytest.raises(ConfigurationError):
            ArchParams(rows=1, cols=2, nonlinear_pes=4)

    def test_nonpositive_latency(self):
        with pytest.raises(ConfigurationError):
            ArchParams(t_config=0)
        with pytest.raises(ConfigurationError):
            ArchParams(data_net_latency=-2)

    @pytest.mark.parametrize("field_name, value", [
        ("sram_banks", 0),
        ("sram_kb", -1),
        ("inst_scratchpad_kb", -4),
        ("control_fifo_depth", -8),
        ("frequency_mhz", -500),
        ("data_width_bits", -32),
        ("technology_nm", 0),
    ])
    def test_nonpositive_capacity_rejected(self, field_name, value):
        with pytest.raises(ConfigurationError) as excinfo:
            ArchParams(**{field_name: value})
        assert field_name in str(excinfo.value)

    def test_negative_nonlinear_pes_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ArchParams(nonlinear_pes=-1)
        assert "nonlinear_pes" in str(excinfo.value)

    def test_zero_nonlinear_pes_allowed(self):
        assert ArchParams(nonlinear_pes=0).nonlinear_pes == 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ArchParams(control_topology="torus")
        assert "control_topology" in str(excinfo.value)

    def test_scaled_clamps_nonlinear(self):
        scaled = DEFAULT_PARAMS.scaled(1, 2)
        assert scaled.n_pes == 2
        assert scaled.nonlinear_pes == 2

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PARAMS.rows = 8  # type: ignore[misc]


class TestControlTransferLatency:
    def test_cs_benes_is_calibrated_baseline(self):
        assert DEFAULT_PARAMS.control_topology == "cs_benes"
        assert DEFAULT_PARAMS.control_transfer_latency \
            == DEFAULT_PARAMS.ctrl_net_latency

    def test_partial_networks_serialize_transfers(self):
        for topology in ("cs", "benes"):
            params = ArchParams(control_topology=topology)
            assert params.control_transfer_latency \
                == 2 * params.ctrl_net_latency

    def test_mesh_rides_the_data_network(self):
        params = ArchParams(control_topology="mesh")
        assert params.control_transfer_latency == params.data_net_latency


class TestGridEdgeCases:
    def test_rectangular_grid(self):
        grid = Grid(2, 6)
        assert grid.size == 12
        assert grid.coord(7) == Coord(1, 1)

    def test_out_of_range_index(self):
        grid = Grid(2, 2)
        with pytest.raises(ConfigurationError):
            grid.coord(4)
        with pytest.raises(ConfigurationError):
            grid.index(Coord(2, 0))

    def test_single_pe_grid(self):
        grid = Grid(1, 1)
        assert grid.neighbours(Coord(0, 0)) == []
        assert grid.mean_distance() == 0.0

    def test_mean_distance_positive(self):
        assert Grid(4, 4).mean_distance() > 0
