"""Execution-model tests: mechanisms, invariants, and paper-shape checks.

The per-mechanism tests pin the behaviours the architecture comparison is
built from; the invariant tests sweep every model over every workload.
"""

import math

import pytest

from repro.arch.params import ArchParams
from repro.baselines import (
    DataflowModel,
    IdealModel,
    MarionetteModel,
    RevelModel,
    RipTideModel,
    SoftbrainModel,
    TIAModel,
    VonNeumannModel,
)
from repro.baselines.base import KernelInstance
from repro.workloads import ALL_WORKLOADS, INTENSIVE_WORKLOADS, get_workload


@pytest.fixture(scope="module")
def kernels():
    out = {}
    for workload in ALL_WORKLOADS:
        instance = workload.instance("tiny")
        result = instance.run()
        out[workload.short] = KernelInstance(instance.cdfg, result.trace)
    return out


@pytest.fixture(scope="module")
def all_models():
    params = ArchParams()
    return {
        "vN": VonNeumannModel(params),
        "df": DataflowModel(params),
        "mPE": MarionetteModel(params, control_network=False, agile=False),
        "full": MarionetteModel(params),
        "SB": SoftbrainModel(params),
        "TIA": TIAModel(params),
        "REV": RevelModel(params),
        "RIP": RipTideModel(params),
        "ideal": IdealModel(params),
    }


class TestMechanisms:
    def test_recurrence_detected_for_crc_like(self, kernels):
        crc = kernels["CRC"]
        inner = [n for n in crc.nests.values() if not n.children][0]
        assert crc.recurrence_of(inner) > 0

    def test_crc_byte_loop_threads_through_bit_loop(self, kernels):
        crc = kernels["CRC"]
        outer = [n for n in crc.nests.values() if n.children][0]
        assert crc.threaded_recurrence(outer) > 0

    def test_gemm_accumulator_is_free(self, kernels):
        gemm = kernels["GEMM"]
        inner = [n for n in gemm.nests.values() if not n.children][0]
        assert gemm.recurrence_of(inner) == 0
        for nest in gemm.nests.values():
            if nest.children:
                assert gemm.threaded_recurrence(nest) == 0

    def test_fft_stage_counters_are_generators(self, kernels):
        fft = kernels["FFT"]
        for nest in fft.nests.values():
            if nest.children:
                assert fft.threaded_recurrence(nest) == 0

    def test_viterbi_min_recurrence_colocates(self, kernels):
        vi = kernels["VI"]
        params = ArchParams()
        model = MarionetteModel(params)
        inner = [
            n for n in vi.nests.values()
            if not n.children and vi.recurrence_of(n) > 0
        ]
        assert inner, "viterbi should have a carried min"
        # chain == t_execute -> colocated: II equals the chain, untaxed.
        assert model.recurrence_ii(vi, inner[0]) == params.t_execute

    def test_ldpc_sibling_loops_are_serial(self, kernels):
        ldpc = kernels["LDPC"]
        siblings = [
            n for n in ldpc.nests.values()
            if n.parent is not None and ldpc.serial_sibling(n)
        ]
        assert siblings, "LDPC's min pass feeds its update pass"

    def test_dynamic_bounds_detected(self, kernels):
        gemm = kernels["GEMM"]
        assert all(
            not gemm.dynamic_bounds(nest) for nest in gemm.nests.values()
        )
        ms = kernels["MS"]
        assert any(ms.dynamic_bounds(nest) for nest in ms.nests.values())

    def test_dataflow_ii_exceeds_marionette(self, kernels):
        params = ArchParams()
        dataflow = DataflowModel(params)
        marionette = MarionetteModel(params)
        gemm = kernels["GEMM"]
        inner = [n for n in gemm.nests.values() if not n.children][0]
        assert dataflow.body_ii(gemm, inner) > marionette.body_ii(gemm, inner)

    def test_von_neumann_counts_whole_kernel(self, kernels):
        params = ArchParams()
        von_neumann = VonNeumannModel(params)
        ms = kernels["MS"]
        inner = [n for n in ms.nests.values() if not n.children][0]
        resident_ii = math.ceil(ms.total_static_ops() / params.n_pes)
        assert von_neumann.body_ii(ms, inner) >= resident_ii

    def test_ops_merged_vs_full(self, kernels):
        branchy = kernels["MS"]
        inner = [
            n for n in branchy.nests.values()
            if not n.children and any(
                branchy.cdfg.block(b).role.value == "branch_arm"
                for b in n.own_blocks(branchy.nests)
            )
        ]
        assert inner
        blocks = inner[0].own_blocks(branchy.nests)
        merged = branchy.ops_of_blocks(blocks, merge_arms=True)
        full = branchy.ops_of_blocks(blocks, merge_arms=False)
        assert merged < full


class TestInvariants:
    def test_ideal_is_a_lower_bound(self, kernels, all_models):
        ideal = all_models["ideal"]
        others = {k: v for k, v in all_models.items() if k != "ideal"}
        for short, kernel in kernels.items():
            bound = ideal.simulate(kernel).cycles
            for name, model in others.items():
                cycles = model.simulate(kernel).cycles
                assert bound <= cycles * 1.02 + 2, (short, name)

    def test_every_feature_helps_or_is_neutral(self, kernels):
        params = ArchParams()
        base = MarionetteModel(params, control_network=False, agile=False)
        cn = MarionetteModel(params, control_network=True, agile=False)
        full = MarionetteModel(params)
        for short, kernel in kernels.items():
            b = base.simulate(kernel).cycles
            assert cn.simulate(kernel).cycles <= b, short
            assert full.simulate(kernel).cycles <= b, short

    def test_utilization_bounded(self, kernels, all_models):
        for kernel in kernels.values():
            for model in all_models.values():
                result = model.simulate(kernel)
                assert 0.0 <= result.utilization <= 1.0

    def test_cycles_positive_and_breakdowns_cover_loops(
        self, kernels, all_models
    ):
        for short, kernel in kernels.items():
            expected_loops = len(kernel.nests)
            for model in all_models.values():
                result = model.simulate(kernel)
                assert result.cycles >= 1
                assert len(result.breakdowns) == expected_loops

    def test_busy_cycles_equal_dynamic_work(self, kernels, all_models):
        params = ArchParams()
        for kernel in kernels.values():
            expected = (
                kernel.trace.dynamic_op_count(kernel.cdfg)
                * params.t_execute
            )
            for model in all_models.values():
                assert model.simulate(kernel).busy_pe_cycles == expected

    def test_deterministic(self, kernels, all_models):
        kernel = kernels["GEMM"]
        for model in all_models.values():
            assert (
                model.simulate(kernel).cycles
                == model.simulate(kernel).cycles
            )


class TestPaperShapes:
    """Coarse ordering claims that must hold at any scale."""

    def test_marionette_beats_von_neumann_and_dataflow_geomean(self, kernels):
        params = ArchParams()
        marionette = MarionetteModel(
            params, control_network=False, agile=False
        )
        von_neumann = VonNeumannModel(params)
        dataflow = DataflowModel(params)
        ratios_vn, ratios_df = [], []
        for workload in INTENSIVE_WORKLOADS:
            kernel = kernels[workload.short]
            m = marionette.simulate(kernel).cycles
            ratios_vn.append(von_neumann.simulate(kernel).cycles / m)
            ratios_df.append(dataflow.simulate(kernel).cycles / m)
        geo = lambda xs: math.exp(sum(map(math.log, xs)) / len(xs))
        assert geo(ratios_vn) > 1.05
        assert geo(ratios_df) > 1.1

    def test_full_marionette_beats_rivals_geomean(self, kernels, all_models):
        full = all_models["full"]
        geo = lambda xs: math.exp(sum(map(math.log, xs)) / len(xs))
        for rival in ("SB", "TIA", "REV", "RIP"):
            ratios = [
                all_models[rival].simulate(kernels[w.short]).cycles
                / full.simulate(kernels[w.short]).cycles
                for w in INTENSIVE_WORKLOADS
            ]
            assert geo(ratios) > 1.1, rival

    def test_revel_is_the_closest_rival(self, kernels, all_models):
        full = all_models["full"]
        geo = lambda xs: math.exp(sum(map(math.log, xs)) / len(xs))
        gaps = {}
        for rival in ("SB", "TIA", "REV", "RIP"):
            gaps[rival] = geo([
                all_models[rival].simulate(kernels[w.short]).cycles
                / full.simulate(kernels[w.short]).cycles
                for w in INTENSIVE_WORKLOADS
            ])
        assert gaps["REV"] == min(gaps.values())

    def test_non_intensive_parity(self, kernels, all_models):
        full = all_models["full"]
        for short in ("CO", "SI", "GP"):
            kernel = kernels[short]
            m = full.simulate(kernel).cycles
            for rival in ("SB", "REV", "RIP", "vN"):
                r = all_models[rival].simulate(kernel).cycles
                assert 0.6 <= r / m <= 2.5, (short, rival)

    def test_tia_slowest_on_streaming(self, kernels, all_models):
        for short in ("CO", "SI", "GP"):
            kernel = kernels[short]
            tia = all_models["TIA"].simulate(kernel).cycles
            others = [
                all_models[r].simulate(kernel).cycles
                for r in ("SB", "REV", "RIP", "full")
            ]
            assert tia > max(others)
