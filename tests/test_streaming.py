"""Streaming-mode tests: exactly-once delivery, batch equivalence,
and the crash-mid-stream failure path.

``Engine.stream`` changes *when* results surface, never *what* they
are: every input position must be yielded exactly once, collecting the
pairs must reproduce ``Engine.execute``'s payloads, and the rendered
report must be byte-identical to batch mode.  A worker crash must
surface as one clean :class:`EngineError` and leave the on-disk cache
fully readable.
"""

from __future__ import annotations

import json

import pytest

from repro.arch.params import DEFAULT_PARAMS
from repro.cli import main
from repro.engine import Engine, ModelSpec, RunSpec
from repro.engine.cache_admin import scan
from repro.errors import EngineError

VN = ModelSpec.make("von_neumann")
MARIONETTE = ModelSpec.make("marionette")


def _specs(scale: str = "tiny"):
    return [
        RunSpec(name, scale, 0, model, DEFAULT_PARAMS)
        for name in ("gemm", "crc", "fft")
        for model in (VN, MARIONETTE)
    ]


class TestExactlyOnce:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_every_position_yielded_exactly_once(self, jobs):
        specs = _specs()
        pairs = list(Engine(jobs=jobs).stream(specs))
        indices = [index for index, _result in pairs]
        assert sorted(indices) == list(range(len(specs)))
        for index, run_result in pairs:
            assert run_result.spec == specs[index]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_duplicate_specs_share_one_simulation(self, jobs):
        spec = _specs()[0]
        engine = Engine(jobs=jobs)
        pairs = list(engine.stream([spec, spec, spec]))
        assert sorted(index for index, _r in pairs) == [0, 1, 2]
        assert engine.stats.simulations == 1
        assert len({run_result.cycles for _i, run_result in pairs}) == 1

    def test_cached_results_stream_first_in_index_order(self, tmp_path):
        specs = _specs()
        Engine(cache_dir=tmp_path).execute(specs)
        warm = Engine(cache_dir=tmp_path)
        pairs = list(warm.stream(specs))
        assert [index for index, _r in pairs] == list(range(len(specs)))
        assert all(run_result.cached for _i, run_result in pairs)
        assert warm.stats.simulations == 0


class TestBatchEquivalence:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_streamed_payloads_equal_batch_payloads(self, jobs):
        specs = _specs()
        batch = Engine(jobs=1).execute(specs)
        streamed = dict(Engine(jobs=jobs).stream(specs))
        assert [streamed[i].result.to_payload() for i in range(len(specs))] \
            == [r.result.to_payload() for r in batch]

    def test_streaming_cli_report_is_byte_identical(self, capsys):
        assert main(["bench", "--scale", "tiny"]) == 0
        batch = capsys.readouterr()
        assert main(["bench", "--scale", "tiny", "--stream",
                     "--jobs", "2"]) == 0
        streamed = capsys.readouterr()
        assert streamed.out == batch.out
        # Progress goes to stderr only: one line per spec, cycles shown.
        lines = [line for line in streamed.err.splitlines()
                 if line.startswith("[")]
        assert len(lines) > 0 and "cycles" in lines[0]

    def test_streaming_populates_the_shared_cache(self, tmp_path):
        specs = _specs()
        streamer = Engine(cache_dir=tmp_path, jobs=2)
        list(streamer.stream(specs))
        warm = Engine(cache_dir=tmp_path)
        warm.execute(specs)
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations == 0


class TestIncrementalAssembly:
    """``assemble_stream`` builds each experiment the moment its last
    spec lands, without changing what the report contains."""

    def test_assembled_results_equal_run_all(self):
        from repro.engine import result_payload
        from repro.experiments.report import (
            all_specs,
            assemble_stream,
            run_all,
        )

        batch = [result_payload(r) for r in run_all("tiny", 0,
                                                    engine=Engine())]
        engine = Engine()
        specs = all_specs("tiny", 0)
        streamed = list(assemble_stream(
            engine.stream(specs), "tiny", 0, engine
        ))
        assert [result_payload(r) for r in streamed] == batch

    def test_first_experiment_emits_before_the_stream_ends(self):
        from repro.experiments.report import all_specs, assemble_stream

        engine = Engine()
        specs = all_specs("tiny", 0)
        engine.execute(specs)                     # warm the memo
        consumed = {"pairs": 0}

        def counting_pairs():
            for pair in engine.stream(specs):
                consumed["pairs"] += 1
                yield pair

        assembled = assemble_stream(counting_pairs(), "tiny", 0, engine)
        first = next(assembled)
        # The first table surfaced with most of the sweep still
        # unstreamed — assembly is incremental, not end-of-batch.
        assert first.experiment
        assert 0 < consumed["pairs"] < len(specs)
        list(assembled)                           # drain: no errors later

    @pytest.mark.parametrize("fmt", ["csv", "json"])
    def test_streamed_cli_emits_tables_incrementally_yet_identically(
            self, capsys, fmt):
        # Covered byte-for-byte by TestBatchEquivalence; this pins the
        # satellite behaviour explicitly for the csv/json forms too.
        assert main(["bench", "--scale", "tiny", "--format", fmt]) == 0
        batch = capsys.readouterr()
        assert main(["bench", "--scale", "tiny", "--format", fmt,
                     "--stream"]) == 0
        streamed = capsys.readouterr()
        assert streamed.out == batch.out


class TestCrashMidStream:
    """A worker raising mid-stream fails cleanly and atomically."""

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_unknown_workload_raises_engine_error(self, jobs, tmp_path):
        good = _specs()
        bad = RunSpec("no_such_kernel", "tiny", 0, VN, DEFAULT_PARAMS)
        engine = Engine(cache_dir=tmp_path, jobs=jobs)
        with pytest.raises(EngineError, match="no_such_kernel"):
            list(engine.stream(good + [bad]))

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_batch_mode_raises_the_same_engine_error(self, jobs, tmp_path):
        # execute() shares stream()'s failure contract: a clean
        # EngineError naming the spec, serial or parallel.
        good = _specs()
        bad = RunSpec("no_such_kernel", "tiny", 0, VN, DEFAULT_PARAMS)
        engine = Engine(cache_dir=tmp_path, jobs=jobs)
        with pytest.raises(EngineError, match="no_such_kernel"):
            engine.execute(good + [bad])

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_cache_survives_a_crashed_stream(self, jobs, tmp_path):
        good = _specs()
        Engine(cache_dir=tmp_path).execute(good)   # warm the good records
        before = {entry.digest for entry in scan(tmp_path)}

        bad = RunSpec("no_such_kernel", "tiny", 0, VN, DEFAULT_PARAMS)
        with pytest.raises(EngineError):
            list(Engine(cache_dir=tmp_path, jobs=jobs).stream(good + [bad]))

        # No record was lost, truncated, or half-written...
        entries = scan(tmp_path)
        assert {entry.digest for entry in entries} >= before
        for entry in entries:
            record = json.loads(entry.path.read_text(encoding="utf-8"))
            assert set(record) == {"key", "payload"}
        assert not list(tmp_path.glob("??/.tmp-*"))
        # ...and a fresh engine still serves everything from the cache.
        fresh = Engine(cache_dir=tmp_path)
        results = fresh.execute(good)
        assert all(run_result.cached for run_result in results)
        assert fresh.stats.traces_computed == 0
        assert fresh.stats.simulations == 0

    def test_partial_results_were_still_delivered(self, tmp_path):
        """Results streamed before the crash are real and cached."""
        good = _specs()[:2]
        bad = RunSpec("no_such_kernel", "tiny", 0, VN, DEFAULT_PARAMS)
        engine = Engine(cache_dir=tmp_path)
        delivered = []
        with pytest.raises(EngineError):
            for index, run_result in engine.stream(good + [bad]):
                delivered.append((index, run_result))
        assert [index for index, _r in delivered] == [0, 1]
        assert all(not r.cached for _i, r in delivered)
