"""CS broadcast network, composed control network, and data mesh tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetworkError
from repro.arch.network.cs import Broadcast, CSNetwork
from repro.arch.network.cs_benes import ControlMessage, ControlNetwork
from repro.arch.network.mesh import DataMesh
from repro.arch.topology import Coord, Grid


class TestCSNetwork:
    def test_structure(self):
        net = CSNetwork(16)
        assert net.stages == 4
        assert net.switch_count == 32

    def test_single_broadcast(self):
        net = CSNetwork(8)
        out = net.apply([Broadcast(2, 1, 6)], list(range(8)))
        assert out[1:7] == [2] * 6
        assert out[0] is None and out[7] is None

    def test_disjoint_ordered_broadcasts(self):
        net = CSNetwork(8)
        out = net.apply(
            [Broadcast(0, 0, 2), Broadcast(5, 3, 7)], list(range(8))
        )
        assert out == [0, 0, 0, 5, 5, 5, 5, 5]

    def test_overlap_rejected(self):
        net = CSNetwork(8)
        assert not net.admissible([Broadcast(0, 0, 4), Broadcast(1, 3, 6)])

    def test_crossing_order_rejected(self):
        net = CSNetwork(8)
        # Ranges disjoint but source order reversed: paths would cross.
        assert not net.admissible([Broadcast(5, 0, 1), Broadcast(2, 4, 6)])

    def test_out_of_range(self):
        net = CSNetwork(8)
        assert not net.admissible([Broadcast(0, 5, 9)])
        with pytest.raises(NetworkError):
            net.apply([Broadcast(0, 5, 9)], list(range(8)))

    def test_empty_range_rejected(self):
        with pytest.raises(NetworkError):
            Broadcast(0, 5, 3)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=4, unique=True))
    def test_consecutive_partition_always_admissible(self, cuts):
        """Any ordered partition of outputs with sources in range order is
        admissible — the defining consecutive-spreading property."""
        bounds = sorted(set(cuts) | {15})
        broadcasts = []
        lo = 0
        for idx, hi in enumerate(bounds):
            if lo > hi:
                continue
            broadcasts.append(Broadcast(min(lo, 15), lo, hi))
            lo = hi + 1
        net = CSNetwork(16)
        assert net.admissible(broadcasts)


class TestControlNetwork:
    def test_disjoint_multicasts_delivered(self):
        net = ControlNetwork(16)
        report = net.offer([
            ControlMessage.to(0, [4, 5, 6], "a"),
            ControlMessage.to(1, [7, 8], "b"),
        ])
        assert len(report.delivered) == 2
        assert report.latency == 1

    def test_destination_conflict_rejected(self):
        net = ControlNetwork(16)
        report = net.offer([
            ControlMessage.to(0, [4, 5], "a"),
            ControlMessage.to(1, [5, 6], "b"),
        ])
        assert len(report.delivered) == 1
        assert len(report.rejected) == 1
        assert net.conflicts == 1

    def test_source_conflict_rejected(self):
        net = ControlNetwork(16)
        report = net.offer([
            ControlMessage.to(3, [4], "a"),
            ControlMessage.to(3, [5], "b"),
        ])
        assert len(report.delivered) == 1

    def test_realise_functional(self):
        net = ControlNetwork(16)
        out = net.realise([
            ControlMessage.to(2, [9, 10, 11], 0x42),
            ControlMessage.to(5, [0, 1], 0x17),
        ])
        assert out == {9: 0x42, 10: 0x42, 11: 0x42, 0: 0x17, 1: 0x17}

    def test_realise_rejects_conflicts(self):
        net = ControlNetwork(16)
        with pytest.raises(NetworkError):
            net.realise([
                ControlMessage.to(0, [3], "a"),
                ControlMessage.to(1, [3], "b"),
            ])

    def test_out_of_range_ports(self):
        net = ControlNetwork(16)
        with pytest.raises(NetworkError):
            net.offer([ControlMessage.to(99, [0], "x")])
        with pytest.raises(NetworkError):
            net.offer([ControlMessage.to(0, [99], "x")])

    def test_switch_count_matches_prototype(self):
        # Two 16x16 CS stages + one 64x64 Benes (Fig. 6(c)).
        assert ControlNetwork(16).switch_count == 32 + 32 + 352


class TestGridAndMesh:
    def test_index_coord_roundtrip(self):
        grid = Grid(4, 4)
        for idx in range(16):
            assert grid.index(grid.coord(idx)) == idx

    def test_neighbours_corner_and_center(self):
        grid = Grid(4, 4)
        assert len(grid.neighbours(Coord(0, 0))) == 2
        assert len(grid.neighbours(Coord(1, 1))) == 4

    def test_xy_path_endpoints_and_length(self):
        grid = Grid(4, 4)
        src, dst = Coord(0, 0), Coord(3, 2)
        path = grid.xy_path(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == src.manhattan(dst)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_xy_path_is_connected(self, a, b):
        grid = Grid(4, 4)
        path = grid.xy_path(grid.coord(a), grid.coord(b))
        for u, v in zip(path, path[1:]):
            assert u.manhattan(v) == 1

    def test_mesh_latency_zero_for_same_pe(self):
        mesh = DataMesh(Grid(4, 4))
        edge = mesh.route(Coord(1, 1), Coord(1, 1))
        assert mesh.latency(edge) == 0

    def test_mesh_mean_latency_near_paper_value(self):
        mesh = DataMesh(Grid(4, 4))
        # Fig. 4(d) annotates ~6 cycles through the data network.
        assert 4.0 <= mesh.mean_transfer_latency() <= 7.0

    def test_congestion_counts_shared_links(self):
        mesh = DataMesh(Grid(4, 4))
        for _ in range(3):
            mesh.route(Coord(0, 0), Coord(0, 3))
        assert mesh.congestion_ii() == 3
        mesh.reset()
        assert mesh.congestion_ii() == 1
