"""Integration tests for the micro-architectural array simulator.

These are the tier-(a) validation programs from DESIGN.md: a loop-operator
pipeline, the Fig. 7(b) branch-divergence scenario with per-token steering,
and end-to-end equivalence against the functional interpreter through the
configuration generator.
"""

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction
from repro.isa.operands import Dest, Operand
from repro.isa.program import ArrayProgram, TriggerEntry
from repro.sim.array import ArraySimulator


def vec_mul_program(params: ArchParams, n: int) -> ArrayProgram:
    """PE0 loop -> PE1/PE2 loads -> PE3 mul -> PE4 store."""
    program = ArrayProgram(params.n_pes)
    program.declare_array(0, "A", 0, n)
    program.declare_array(1, "B", n, n)
    program.declare_array(2, "OUT", 2 * n, n)
    program.program_for(0).add(TriggerEntry(
        1,
        DataInstruction.loop(
            Operand.imm(0), Operand.imm(n), Operand.imm(1),
            (Dest.pe_port(1, 0), Dest.pe_port(2, 0), Dest.pe_port(4, 1)),
        ),
        ControlDirective.loop(exit_addr=9, exit_targets=(params.n_pes,)),
    ))
    program.program_for(1).add(TriggerEntry(
        1, DataInstruction.load(0, Operand.port(0), (Dest.pe_port(3, 0),)),
    ))
    program.program_for(2).add(TriggerEntry(
        1, DataInstruction.load(1, Operand.port(0), (Dest.pe_port(3, 1),)),
    ))
    program.program_for(3).add(TriggerEntry(
        1,
        DataInstruction.compute(
            Opcode.MUL, (Operand.port(0), Operand.port(1)),
            (Dest.pe_port(4, 0),),
        ),
    ))
    program.program_for(4).add(TriggerEntry(
        1, DataInstruction.store(2, Operand.port(1), Operand.port(0)),
    ))
    for pe in range(5):
        program.set_initial(pe, 1)
    return program


def branch_program(params: ArchParams, n: int) -> ArrayProgram:
    """Fig. 7(b): PE1 branches, PE2 holds both arm configurations."""
    program = ArrayProgram(params.n_pes)
    program.declare_array(2, "OUT", 0, n)
    program.program_for(0).add(TriggerEntry(
        1,
        DataInstruction.loop(
            Operand.imm(0), Operand.imm(n), Operand.imm(1),
            (Dest.pe_port(1, 0), Dest.pe_port(2, 0), Dest.pe_port(3, 1)),
        ),
        ControlDirective.loop(exit_addr=9, exit_targets=(params.n_pes,)),
    ))
    program.program_for(1).add(TriggerEntry(
        1,
        DataInstruction.compute(
            Opcode.LT, (Operand.port(0), Operand.imm(n // 2)),
            (Dest.control(),),
        ),
        ControlDirective.branch(true_addr=2, false_addr=3, targets=(2,)),
    ))
    pe2 = program.program_for(2)
    pe2.add(TriggerEntry(2, DataInstruction.compute(
        Opcode.MUL, (Operand.port(0), Operand.imm(2)),
        (Dest.pe_port(3, 0),),
    )))
    pe2.add(TriggerEntry(3, DataInstruction.compute(
        Opcode.ADD, (Operand.port(0), Operand.imm(10)),
        (Dest.pe_port(3, 0),),
    )))
    program.program_for(3).add(TriggerEntry(
        1, DataInstruction.store(2, Operand.port(1), Operand.port(0)),
    ))
    for pe, addr in ((0, 1), (1, 1), (2, 2), (3, 1)):
        program.set_initial(pe, addr)
    return program


class TestLoopPipeline:
    def test_functional_result(self, params):
        n = 16
        program = vec_mul_program(params, n)
        sim = ArraySimulator(params, program)
        a = np.arange(1, n + 1)
        b = np.arange(2, n + 2)
        sim.load_array("A", a)
        sim.load_array("B", b)
        result = sim.run(halt_messages=999)
        assert np.array_equal(result.array_out(program, "OUT"), a * b)

    def test_pipeline_ii_is_one(self, params):
        n = 24
        program = vec_mul_program(params, n)
        sim = ArraySimulator(params, program)
        sim.load_array("A", np.ones(n, dtype=np.int64))
        sim.load_array("B", np.ones(n, dtype=np.int64))
        result = sim.run(halt_messages=999)
        # The MUL PE fires once per element; steady state is one per cycle.
        assert result.stats.pe_stats[3].firings == n
        # Total cycles = startup + N + drain + quiescence window; with II=1
        # they scale ~linearly, far below 2 cycles/element.
        assert result.cycles < 2 * n + 60

    def test_loop_exit_reaches_controller(self, params):
        n = 4
        program = vec_mul_program(params, n)
        sim = ArraySimulator(params, program)
        sim.load_array("A", np.ones(n, dtype=np.int64))
        sim.load_array("B", np.ones(n, dtype=np.int64))
        result = sim.run(halt_messages=1)
        assert result.halted

    def test_utilization_counters_account_everything(self, params):
        n = 8
        program = vec_mul_program(params, n)
        sim = ArraySimulator(params, program)
        sim.load_array("A", np.ones(n, dtype=np.int64))
        sim.load_array("B", np.ones(n, dtype=np.int64))
        result = sim.run(halt_messages=999)
        for stats in result.stats.pe_stats.values():
            assert stats.total_cycles == result.cycles


class TestBranchSteering:
    def test_functional_result(self, params):
        n = 16
        program = branch_program(params, n)
        sim = ArraySimulator(params, program)
        result = sim.run(halt_messages=999)
        expected = np.array(
            [i * 2 if i < n // 2 else i + 10 for i in range(n)]
        )
        assert np.array_equal(result.array_out(program, "OUT"), expected)

    def test_configuration_time_is_hidden(self, params):
        """The steered PE reconfigures per token without visible config
        cycles: it fires N times but never enters the configuration phase
        after the initial one (Proactive PE Configuration, Fig. 7(b))."""
        n = 16
        program = branch_program(params, n)
        sim = ArraySimulator(params, program)
        result = sim.run(halt_messages=999)
        pe2 = result.stats.pe_stats[2]
        assert pe2.firings == n
        assert sim.pes[2].control.configurations <= 1
        assert pe2.cycles_configuring <= params.t_config

    def test_steering_order_matches_tokens(self, params):
        """Alternating branch outcomes must pair with their own tokens."""
        n = 12
        program = branch_program(params, n)
        sim = ArraySimulator(params, program)
        result = sim.run(halt_messages=999)
        out = result.array_out(program, "OUT")
        for i in range(n):
            assert out[i] == (i * 2 if i < n // 2 else i + 10)


class TestEndToEndViaConfigGen:
    @pytest.mark.parametrize("expr", ["affine", "sigmoid", "accumulate"])
    def test_simulator_matches_interpreter(self, params, expr):
        from repro.compiler.config_gen import generate_program
        from repro.ir.builder import KernelBuilder
        from repro.ir.interp import Interpreter

        n = 12
        k = KernelBuilder(f"e2e_{expr}")
        size = k.param("n")
        k.array("x")
        k.array("o")
        rng = np.random.default_rng(3)
        if expr == "affine":
            with k.loop("i", 0, size) as i:
                k.store("o", i, k.load("x", i) * 3 + 7)
            x = rng.integers(0, 50, n)
        elif expr == "sigmoid":
            with k.loop("i", 0, size) as i:
                k.store("o", i, k.sigmoid(k.load("x", i)))
            x = rng.normal(0, 1, n)
        else:
            k.set("acc", 0)
            with k.loop("i", 0, size) as i:
                k.set("acc", k.get("acc") + k.load("x", i))
                k.store("o", i, k.get("acc"))
            x = rng.integers(0, 10, n)
        cdfg = k.build()

        interp = Interpreter(cdfg).run(
            {"x": x, "o": np.zeros(n, dtype=x.dtype)}, {"n": n}
        )
        program = generate_program(
            cdfg, params, param_values={"n": n},
            array_lengths={"x": n, "o": n},
        )
        sim = ArraySimulator(params, program)
        sim.load_array("x", x)
        result = sim.run(halt_messages=999)
        assert np.allclose(
            result.array_out(program, "o"), interp.array("o"), atol=1e-9
        )
