"""Benchmarks: ablation sweeps (array size, mesh latency, FIFO depth)."""

from repro.experiments import ablations


def test_array_size_sweep(benchmark, scale):
    result = benchmark.pedantic(
        ablations.array_size_sweep, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    speedups = [r["speedup"] for r in result.rows]
    assert all(s > 1.05 for s in speedups)


def test_mesh_latency_sweep(benchmark, scale):
    result = benchmark.pedantic(
        ablations.mesh_latency_sweep, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    gains = [r["cn_speedup_geomean"] for r in result.rows]
    # The dedicated network matters more the slower the mesh is.
    assert gains == sorted(gains)
    assert result.summary["gain slope (10c vs 2c mesh)"] > 1.0


def test_fifo_depth_sweep(benchmark):
    result = benchmark.pedantic(
        ablations.fifo_depth_sweep, rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    assert result.summary["all depths correct"] == 1.0
