"""Benchmark: regenerate Figure 11 (PE execution model comparison)."""

from repro.experiments import fig11_pe_models


def test_fig11_pe_models(benchmark, scale):
    result = benchmark.pedantic(
        fig11_pe_models.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    assert len(result.rows) == 10
    assert result.summary["geomean speedup vs von Neumann PE"] > 1.05
    assert result.summary["geomean speedup vs dataflow PE"] > 1.1
