"""Sharded CI lane example: the ablation sweep split across two shards.

This is the recipe docs/ENGINE.md documents for CI: each lane runs one
fingerprint-prefix shard of a sweep against a shared content-addressed
cache and exports its working set; a final (cheap) merge lane reassembles
the exports and re-derives the tables without recomputing anything.  The
merged tables must be byte-identical to the unsharded golden run.
"""

from __future__ import annotations

import json

from repro.engine import (
    Engine,
    merge_shard_documents,
    result_payload,
    shard_export_document,
    shard_specs,
)
from repro.experiments import ablations

SEED = 0
SHARDS = 2


def test_sharded_ablation_sweep_matches_unsharded_golden(scale, tmp_path):
    specs = ablations.specs(scale, SEED)

    # The golden reference: one unsharded engine, as `repro bench` runs it.
    golden = [
        result_payload(result)
        for result in ablations.run(scale, SEED, engine=Engine(jobs=2))
    ]

    # Two shard lanes, as two CI jobs would run them: disjoint spec
    # subsets, one shared cache directory, one export each.
    documents = []
    for index in range(1, SHARDS + 1):
        lane = Engine(cache_dir=tmp_path / "cache", jobs=2)
        lane.execute(shard_specs(specs, index, SHARDS))
        documents.append(shard_export_document(
            lane, scale=scale, seed=SEED, shard=(index, SHARDS)
        ))

    # The merge lane: preload the union, re-derive the tables.
    merged = merge_shard_documents(documents)
    merge_engine = Engine()
    merge_engine.cache.preload(merged["entries"])
    results = ablations.run(scale, SEED, engine=merge_engine)

    # Reassembly is pure cache replay...
    assert merge_engine.stats.traces_computed == 0
    assert merge_engine.stats.simulations == 0
    # ...and byte-identical to the golden run.
    payloads = [result_payload(result) for result in results]
    assert json.dumps(payloads, sort_keys=True) \
        == json.dumps(golden, sort_keys=True)

    for result in results:
        print(result.to_table())
        print()
