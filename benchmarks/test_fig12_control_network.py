"""Benchmark: regenerate Figure 12 (control network speedup)."""

from repro.experiments import fig12_control_network


def test_fig12_control_network(benchmark, scale):
    result = benchmark.pedantic(
        fig12_control_network.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    geomean = result.summary["geomean control-network speedup"]
    assert 1.02 <= geomean <= 1.6  # paper: 1.14x
    assert all(r["with_control_network"] >= 1.0 for r in result.rows)
