"""Benchmark: regenerate Figure 16 (network vs Agile speedup balance)."""

from repro.experiments import fig16_balance


def test_fig16_balance(benchmark, scale):
    result = benchmark.pedantic(
        fig16_balance.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    dominant = {r["kernel"]: r["dominant"] for r in result.rows}
    assert dominant["CRC"] == "network"
    assert dominant["ADPCM"] == "network"
    for kernel in ("VI", "HT", "SCD", "GEMM"):
        assert dominant[kernel] == "pipeline"
