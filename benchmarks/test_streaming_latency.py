"""Streaming latency benchmark: first result before the batch would end.

Batch mode blocks on a whole-batch trace phase before any model
evaluation surfaces; streaming prices a spec the moment its trace lands.
The contract worth asserting is the user-visible one: on a cold engine,
streaming's time-to-first-result beats batch mode's time-to-completion —
a sweep starts reporting while an equivalent batch run would still be
silent.
"""

from __future__ import annotations

import time

from repro.engine import Engine
from repro.experiments import ablations

SEED = 0


def test_stream_first_result_beats_batch_completion(scale):
    specs = ablations.specs(scale, SEED)

    batch = Engine(jobs=2)
    start = time.perf_counter()
    results = batch.execute(specs)
    batch_elapsed = time.perf_counter() - start
    assert len(results) == len(specs)

    streamer = Engine(jobs=2)
    start = time.perf_counter()
    stream = streamer.stream(specs)
    first_index, first_result = next(stream)
    first_elapsed = time.perf_counter() - start
    remaining = list(stream)

    print(f"time-to-first-result {first_elapsed:.3f}s "
          f"(spec {first_index}: {first_result.spec.workload}, "
          f"{first_result.cycles} cycles) vs "
          f"batch completion {batch_elapsed:.3f}s")

    assert len(remaining) + 1 == len(specs)
    assert not first_result.cached          # a genuinely computed result
    assert first_elapsed < batch_elapsed, (
        f"streaming first result ({first_elapsed:.3f}s) did not beat "
        f"batch completion ({batch_elapsed:.3f}s) at scale {scale!r}"
    )
