"""Dispatched CI lane example: the ablation sweep on a worker fleet.

This is the dynamic counterpart of ``test_shard_lane.py``: instead of a
static fingerprint-prefix partition, a localhost ``repro serve``
coordinator hands the ablation sweep's specs to worker *processes* that
pull work as they go idle (two tasks per lease round trip, acks
piggybacked on the next lease) and share every trace and cycle record
through the HTTP cache backend.  The assembled tables must be
byte-identical to the unsharded golden run, every functional trace must
be computed exactly once across the fleet, and — when the host actually
has the cores for it — two workers must beat one on wall clock.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.engine import Engine, HTTPBackend, MemoryBackend, result_payload
from repro.engine.distributed.coordinator import Coordinator
from repro.engine.distributed.server import DistributedServer
from repro.engine.distributed.worker import CoordinatorClient, dispatch_job
from repro.experiments import ablations

SEED = 0
SRC_DIR = str(Path(repro.__file__).parents[1])


def _spawn_worker(url: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", url,
         "--poll", "0.05", "--max-idle", "300", "--lease-batch", "2"],
        env=env, stderr=subprocess.DEVNULL,
    )


def _fleet_run(specs, n_workers: int):
    """One cold dispatched run: elapsed seconds, tables, fleet stats."""
    server = DistributedServer(MemoryBackend(), Coordinator()).start()
    client = CoordinatorClient(server.url)
    workers = [_spawn_worker(server.url) for _ in range(n_workers)]
    try:
        start = time.perf_counter()
        landed = list(dispatch_job(
            client, [spec.to_payload() for spec in specs],
            scale=specs[0].scale, seed=SEED, poll=0.05,
        ))
        elapsed = time.perf_counter() - start
        stats = client.status()["stats"]
        # Assemble the tables exactly as `repro bench --dispatch` does:
        # a local replay against the fleet's shared cache.
        replay = Engine(backend=HTTPBackend(server.url))
        results = ablations.run(specs[0].scale, SEED, engine=replay)
        assert replay.stats.simulations == 0       # pure cache replay
        assert replay.stats.traces_computed == 0
    finally:
        client.shutdown()
        for worker in workers:
            worker.wait(timeout=30)
        server.stop()
    assert len(landed) == len(specs)
    return elapsed, results, stats


def test_dispatch_lane_matches_golden_and_scales(scale):
    specs = ablations.specs(scale, SEED)
    golden = [
        result_payload(result)
        for result in ablations.run(scale, SEED, engine=Engine(jobs=2))
    ]

    one_worker, results_one, stats_one = _fleet_run(specs, 1)
    two_workers, results_two, stats_two = _fleet_run(specs, 2)

    # Byte-identical to the unsharded golden run, for both fleet sizes.
    for results in (results_one, results_two):
        payloads = [result_payload(result) for result in results]
        assert json.dumps(payloads, sort_keys=True) \
            == json.dumps(golden, sort_keys=True)

    # Every functional trace computed exactly once across the fleet.
    distinct_traces = len({spec.trace_key() for spec in specs})
    for stats in (stats_one, stats_two):
        assert stats["traces_computed"] == distinct_traces
        assert stats["requeues"] == 0

    for result in results_two:
        print(result.to_table())
        print()
    print(f"1 worker: {one_worker:.2f}s, 2 workers: {two_workers:.2f}s")

    # Work stealing only buys wall clock when there is hardware to
    # steal onto; on a single-core host the claim is untestable, and on
    # exactly two cores the worker subprocesses contend with the server
    # and the test runner, so the comparison is noise.
    if (os.cpu_count() or 1) < 3:
        pytest.skip("speedup assertion needs >= 3 CPUs")
    assert two_workers < 0.9 * one_worker, (
        f"2-worker dispatch ({two_workers:.2f}s) did not beat 1 worker "
        f"({one_worker:.2f}s) by the 10% margin at scale {scale!r}"
    )


def _spawn_durable_serve(port: int, state_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--state-dir", str(state_dir / "queue"),
         "--cache-dir", str(state_dir / "cache")],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def test_dispatch_lane_survives_a_server_restart(scale, tmp_path):
    """The dispatched lane with a serve crash in the middle.

    A durable (``--state-dir``) coordinator is SIGKILLed after the
    first result lands and restarted on the same port; the worker
    process and the dispatch client ride the outage out on reconnect
    backoff, the journal replays the job, and the assembled results
    are still byte-identical to the unsharded golden run.
    """
    import socket

    from repro.engine.distributed.backend import HTTPBackend
    from repro.errors import DistributedError

    specs = ablations.specs(scale, SEED)
    golden = [
        result_payload(result)
        for result in ablations.run(scale, SEED, engine=Engine(jobs=2))
    ]
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    url = f"http://127.0.0.1:{port}"

    def wait_healthy():
        deadline = time.monotonic() + 30.0
        while True:
            try:
                return HTTPBackend(url).health()
            except DistributedError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    server = _spawn_durable_serve(port, tmp_path)
    worker = None
    client = CoordinatorClient(url)
    try:
        wait_healthy()
        worker = _spawn_worker(url)
        restarted = False
        start = time.perf_counter()
        landed = []
        for index, payload in dispatch_job(
                client, [spec.to_payload() for spec in specs],
                scale=scale, seed=SEED, poll=0.05,
                stall_timeout=120.0, reconnect=60.0):
            landed.append((index, payload))
            if not restarted:
                restarted = True
                server.kill()
                server.wait(timeout=30)
                server = _spawn_durable_serve(port, tmp_path)
                wait_healthy()
        elapsed = time.perf_counter() - start
        assert sorted(index for index, _payload in landed) \
            == list(range(len(specs)))
        # Byte-identical across the crash: replay the report assembly
        # against the fleet's (disk-backed, restart-surviving) cache.
        replay = Engine(backend=HTTPBackend(url))
        results = ablations.run(scale, SEED, engine=replay)
        assert replay.stats.simulations == 0
        payloads = [result_payload(result) for result in results]
        assert json.dumps(payloads, sort_keys=True) \
            == json.dumps(golden, sort_keys=True)
        print(f"restart-mid-dispatch lane: {len(specs)} specs across "
              f"one SIGKILL + journal replay in {elapsed:.2f}s")
    finally:
        import contextlib

        with contextlib.suppress(DistributedError):
            client.shutdown()
        if worker is not None:
            worker.wait(timeout=60)
        server.kill()
        server.wait(timeout=30)
