"""Benchmark: regenerate Figure 15 (utilization effects of Agile)."""

from repro.experiments import fig15_utilization


def test_fig15_utilization(benchmark, scale):
    result = benchmark.pedantic(
        fig15_utilization.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    assert len(result.rows) == 7
    assert result.summary["mean outer-BB utilization gain"] > 1.5
    assert result.summary["mean pipeline utilization gain"] > 1.05
