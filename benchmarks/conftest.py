"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the ``small`` workload
scale (set ``REPRO_BENCH_SCALE=paper`` for Table 5 sizes; expect minutes).
The first benchmark to touch a workload pays its functional-interpretation
cost; the shared :class:`~repro.experiments.common.SuiteContext` caches the
traces so subsequent figures measure model evaluation, as the paper's own
toolflow does (one simulation, many analyses).

Every benchmark prints its figure/table rows, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation.
"""

import os

import pytest


SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session", autouse=True)
def warm_suite(scale):
    """Run every workload once up front so benchmarks time the experiment
    logic, not first-touch trace construction."""
    from repro.experiments.common import SuiteContext

    context = SuiteContext.get(scale)
    context.all()
    return context
