"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the ``small`` workload
scale (set ``REPRO_BENCH_SCALE=paper`` for Table 5 sizes; expect minutes).
The first benchmark to touch a workload pays its functional-interpretation
cost; the shared experiment engine caches the traces so subsequent figures
measure model evaluation, as the paper's own toolflow does (one simulation,
many analyses).

Registered engine benchmarks:

* ``test_engine_speedup.py`` — asserts the warm-cache (+parallel) report
  run beats the serial seed path, using the session-scoped
  ``engine_cache_dir`` below as its on-disk cache;
* ``test_shard_lane.py`` — the sharded CI lane example: the ablation
  sweep split ``--shard 1/2`` / ``2/2`` against one shared cache,
  exports merged and checked byte-identical against the unsharded
  golden run;
* ``test_dispatch_lane.py`` — the dispatched CI lane example: a
  localhost ``repro serve`` coordinator + worker processes pulling the
  ablation sweep dynamically over the HTTP cache backend, checked
  byte-identical against the unsharded golden run (plus a 2-worker
  speedup assertion on multi-core hosts);
* ``test_streaming_latency.py`` — asserts streaming mode's
  time-to-first-result beats batch mode's time-to-completion on a cold
  engine.

Every benchmark prints its figure/table rows, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation.
"""

import os

import pytest


SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def engine_cache_dir(tmp_path_factory):
    """A session-lived on-disk cache directory for engine benchmarks."""
    return tmp_path_factory.mktemp("engine-cache")


@pytest.fixture(scope="session", autouse=True)
def warm_suite(scale):
    """Run every workload once up front so benchmarks time the experiment
    logic, not first-touch trace construction."""
    from repro.experiments.common import SuiteContext

    context = SuiteContext.get(scale)
    context.all()
    return context
