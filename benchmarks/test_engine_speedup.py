"""Engine speedup benchmark: cached+parallel must beat the serial seed path.

The seed repository ran every workload x model combination serially with
in-process trace caching only.  The engine's contract is that a report run
backed by a warm on-disk cache (optionally with worker processes) is
strictly faster, because zero functional traces are re-interpreted and
zero model evaluations re-run — which this benchmark also verifies through
the engine's stats counters, the same counters ``repro bench --format
json`` exports.
"""

from __future__ import annotations

import time

from repro.engine import Engine
from repro.experiments.report import run_all


def _timed_report(scale: str, engine: Engine) -> float:
    start = time.perf_counter()
    results = run_all(scale, engine=engine)
    elapsed = time.perf_counter() - start
    assert len(results) == 9
    return elapsed


def test_cached_parallel_report_beats_serial_seed_path(
        scale, engine_cache_dir):
    # The seed behaviour: a fresh process, no disk cache, one worker.
    serial_cold = _timed_report(scale, Engine(jobs=1))

    # Populate the on-disk cache (cost paid once, amortised forever).
    warmer = Engine(cache_dir=engine_cache_dir, jobs=2)
    _timed_report(scale, warmer)

    # The engine path: warm cache + workers, in a fresh engine.
    warm = Engine(cache_dir=engine_cache_dir, jobs=2)
    warm_elapsed = _timed_report(scale, warm)

    # Zero workload re-simulations and zero model re-evaluations...
    assert warm.stats.traces_computed == 0
    assert warm.stats.simulations == 0
    # ...which must translate into beating the serial seed path outright.
    assert warm_elapsed < serial_cold, (
        f"cached+parallel report ({warm_elapsed:.2f}s) did not beat the "
        f"serial path ({serial_cold:.2f}s) at scale {scale!r}"
    )
