"""Benchmark: regenerate Table 6 (network area comparison)."""

from repro.experiments import table6_network_area


def test_table6_network_area(benchmark):
    result = benchmark.pedantic(
        table6_network_area.run, rounds=3, iterations=1
    )
    print()
    print(result.to_table())
    ratios = {
        r["architecture"]: r["network_ratio_pct"] for r in result.rows
    }
    ours = ratios.pop("Marionette")
    assert ours < 20.0              # paper: 11.5%
    assert all(ours < other for other in ratios.values())
