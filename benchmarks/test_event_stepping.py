"""Event-driven stepping benchmark lane.

Two assertions keep the simulator fast path honest:

* on a sparse-control workload — a large array where only a handful of
  PEs carry the kernel, with a slow data mesh, so most cycles and most
  PEs are idle — the event-driven stepper must beat the naive
  poll-everything stepper by a real margin *while producing identical
  results* (the differential suite in ``tests/test_sim_event.py`` is
  the correctness gate; this lane is the performance gate);
* ``repro bench --profile`` must emit a schema-valid ``BENCH_*.json``
  perf-trajectory record (see docs/ENGINE.md "Performance" for the
  schema) whose report output is byte-identical to an unprofiled run.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from repro.arch.params import ArchParams
from repro.engine import BENCH_PROFILE_SCHEMA
from repro.ir.ops import Opcode
from repro.isa.control import ControlDirective
from repro.isa.data import DataInstruction
from repro.isa.operands import Dest, Operand
from repro.isa.program import ArrayProgram, TriggerEntry
from repro.sim.array import ArraySimulator

#: Margin the event stepper must clear on the sparse workload: it skips
#: ~59 idle PEs per cycle plus whole idle-cycle stretches, so parity
#: would mean the scheduler is broken; 1.3x keeps CI noise-proof (the
#: observed factor on an unloaded host is ~3x).
SPEEDUP_FLOOR = 1.3


def _sparse_program(params: ArchParams, n: int) -> ArrayProgram:
    """PE0 loop -> PE1/PE2 loads -> PE3 mul -> PE4 store, on a big idle
    array (59 of 64 PEs never configure) behind a slow mesh."""
    program = ArrayProgram(params.n_pes)
    program.declare_array(0, "A", 0, n)
    program.declare_array(1, "B", n, n)
    program.declare_array(2, "OUT", 2 * n, n)
    program.program_for(0).add(TriggerEntry(
        1,
        DataInstruction.loop(
            Operand.imm(0), Operand.imm(n), Operand.imm(1),
            (Dest.pe_port(1, 0), Dest.pe_port(2, 0), Dest.pe_port(4, 1)),
        ),
        ControlDirective.loop(exit_addr=9, exit_targets=(params.n_pes,)),
    ))
    program.program_for(1).add(TriggerEntry(
        1, DataInstruction.load(0, Operand.port(0), (Dest.pe_port(3, 0),)),
    ))
    program.program_for(2).add(TriggerEntry(
        1, DataInstruction.load(1, Operand.port(0), (Dest.pe_port(3, 1),)),
    ))
    program.program_for(3).add(TriggerEntry(
        1,
        DataInstruction.compute(
            Opcode.MUL, (Operand.port(0), Operand.port(1)),
            (Dest.pe_port(4, 0),),
        ),
    ))
    program.program_for(4).add(TriggerEntry(
        1, DataInstruction.store(2, Operand.port(1), Operand.port(0)),
    ))
    for pe in range(5):
        program.set_initial(pe, 1)
    return program


def _run(params, program, n, strategy):
    sim = ArraySimulator(params, program, strategy=strategy)
    sim.load_array("A", np.arange(1, n + 1))
    sim.load_array("B", np.arange(2, n + 2))
    return sim.run(halt_messages=999)


def test_event_stepper_beats_naive_on_sparse_control(scale):
    params = replace(ArchParams().scaled(8, 8), data_net_latency=30)
    n = 96
    program = _sparse_program(params, n)
    reps = 3
    elapsed = {}
    results = {}
    for strategy in ("naive", "event"):
        start = time.perf_counter()
        for _ in range(reps):
            results[strategy] = _run(params, program, n, strategy)
        elapsed[strategy] = (time.perf_counter() - start) / reps

    # Identical numbers first — a fast wrong simulator is worthless.
    naive, event = results["naive"], results["event"]
    assert event.cycles == naive.cycles
    assert event.stats == naive.stats
    assert event.scratchpad.data == naive.scratchpad.data

    speedup = elapsed["naive"] / elapsed["event"]
    print(f"\nsparse-control 8x8, n={n}, mesh=30c: "
          f"naive {elapsed['naive'] * 1000:.1f} ms, "
          f"event {elapsed['event'] * 1000:.1f} ms "
          f"({speedup:.2f}x, {naive.cycles} cycles)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"event stepper only {speedup:.2f}x over naive "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_bench_profile_emits_schema_valid_json(tmp_path, capsys):
    from repro.cli import main

    profile_path = tmp_path / "bench_profile.json"
    code = main([
        "bench", "--scale", "tiny",
        "--cache-dir", str(tmp_path / "cache"),
        "--profile", "--profile-out", str(profile_path),
    ])
    assert code == 0
    profiled_report = capsys.readouterr().out

    document = json.loads(profile_path.read_text(encoding="utf-8"))
    assert document["schema"] == BENCH_PROFILE_SCHEMA
    assert document["scale"] == "tiny"
    assert isinstance(document["seed"], int)
    assert isinstance(document["jobs"], int)
    assert isinstance(document["engine_version"], int)
    assert isinstance(document["created"], float)
    assert document["spec_count"] > 0
    assert document["total_seconds"] > 0
    assert isinstance(document["engine_stats"], dict)

    phases = document["phases"]
    names = [phase["phase"] for phase in phases]
    assert names[0] == "trace"
    assert names[-1] == "assemble"
    assert any(name.startswith("simulate:") for name in names)
    for phase in phases:
        assert phase["seconds"] >= 0
        assert isinstance(phase["stats_delta"], dict)
    # The cold run computed its traces; the record says so.
    assert phases[0]["stats_delta"].get("traces_computed", 0) > 0

    # The profile is a side artifact: stdout stays byte-identical.
    code = main(["bench", "--scale", "tiny",
                 "--cache-dir", str(tmp_path / "cache2")])
    assert code == 0
    assert capsys.readouterr().out == profiled_report
