"""Batch stepping benchmark lane.

The batch simulator's reason to exist is throughput on sweeps: N runs
of the same program advanced in lockstep must beat N sequential
event-driven runs by a real margin *while staying bit-identical* (the
differential wall in ``tests/test_sim_event.py`` / ``test_sim_batch.py``
is the correctness gate; this lane is the performance gate).  Second,
``repro bench --profile`` must price grouped simulation as its own
``simulate:batch`` phase in a schema-valid ``BENCH_*.json`` record
whose report output stays byte-identical to an unprofiled run.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from repro.arch.params import ArchParams
from repro.engine import BENCH_PROFILE_SCHEMA
from repro.sim.array import ArraySimulator
from repro.sim.batch import BatchRun, simulate_batch

from test_event_stepping import _sparse_program

#: Margin lockstep batching must clear over sequential event stepping
#: on an 8-run sweep: the leader pays the full event schedule once and
#: the seven followers replay only the data plane, so parity would mean
#: the replay is doing schedule work per member; 2.0x keeps CI
#: noise-proof (the observed factor on an unloaded host is ~2.9x).
SPEEDUP_FLOOR = 2.0

#: Sweep width of the perf gate (the paper's seed-sweep shape).
N_RUNS = 8


def _member_arrays(n):
    """Seed-varied input images: same program, different data per run."""
    members = []
    for seed in range(N_RUNS):
        rng = np.random.default_rng(seed)
        members.append({
            "A": rng.integers(1, 100, n),
            "B": rng.integers(1, 100, n),
        })
    return members


def _event_run(params, program, arrays):
    sim = ArraySimulator(params, program, strategy="event")
    for name, values in arrays.items():
        sim.load_array(name, values)
    return sim.run(halt_messages=999)


def test_batch_stepper_beats_sequential_event_on_sparse_sweep(scale):
    params = replace(ArchParams().scaled(8, 8), data_net_latency=30)
    n = 96
    program = _sparse_program(params, n)
    members = _member_arrays(n)
    reps = 3

    start = time.perf_counter()
    for _ in range(reps):
        event_results = [_event_run(params, program, arrays)
                         for arrays in members]
    event_seconds = (time.perf_counter() - start) / reps

    start = time.perf_counter()
    for _ in range(reps):
        batch_results = simulate_batch(
            params, program,
            [BatchRun(arrays=arrays) for arrays in members],
            halt_messages=999,
        )
    batch_seconds = (time.perf_counter() - start) / reps

    # Identical numbers first — a fast wrong simulator is worthless.
    for event, batch in zip(event_results, batch_results):
        assert batch.cycles == event.cycles
        assert batch.stats == event.stats
        assert batch.scratchpad.data == event.scratchpad.data
        assert batch.scratchpad.bank_conflicts == \
            event.scratchpad.bank_conflicts

    speedup = event_seconds / batch_seconds
    print(f"\nsparse-control 8x8, n={n}, mesh=30c, {N_RUNS} runs: "
          f"event {event_seconds * 1000:.1f} ms, "
          f"batch {batch_seconds * 1000:.1f} ms "
          f"({speedup:.2f}x, {event_results[0].cycles} cycles/run)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch stepper only {speedup:.2f}x over sequential event "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


def test_bench_profile_prices_grouped_simulation(tmp_path, capsys):
    from repro.cli import main

    profile_path = tmp_path / "bench_profile.json"
    code = main([
        "bench", "--scale", "tiny",
        "--cache-dir", str(tmp_path / "cache"),
        "--profile", "--profile-out", str(profile_path),
    ])
    assert code == 0
    profiled_report = capsys.readouterr().out

    document = json.loads(profile_path.read_text(encoding="utf-8"))
    assert document["schema"] == BENCH_PROFILE_SCHEMA
    phases = document["phases"]
    names = [phase["phase"] for phase in phases]

    # The bench sweep runs every model against each workload at one
    # geometry, so multi-member batches exist and are priced as the
    # dedicated phase.
    assert "simulate:batch" in names
    batch_phase, = [p for p in phases if p["phase"] == "simulate:batch"]
    assert batch_phase["seconds"] >= 0
    assert isinstance(batch_phase["stats_delta"], dict)
    assert batch_phase["stats_delta"].get("simulations", 0) > 0

    # The profile is a side artifact: stdout stays byte-identical.
    code = main(["bench", "--scale", "tiny",
                 "--cache-dir", str(tmp_path / "cache2")])
    assert code == 0
    assert capsys.readouterr().out == profiled_report
