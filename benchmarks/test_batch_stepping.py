"""Batch stepping benchmark lane.

The batch simulator's reason to exist is throughput on sweeps: N runs
of the same program advanced in lockstep must beat N sequential
event-driven runs by a real margin *while staying bit-identical* (the
differential wall in ``tests/test_sim_event.py`` / ``test_sim_batch.py``
is the correctness gate; this lane is the performance gate).  Second,
``repro bench --profile`` must price grouped simulation as its own
``simulate:batch`` phase in a schema-valid ``BENCH_*.json`` record
whose report output stays byte-identical to an unprofiled run.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import numpy as np

from repro.arch.params import ArchParams
from repro.engine import BENCH_PROFILE_SCHEMA
from repro.engine.executor import EngineStats
from repro.sim.array import ArraySimulator
from repro.sim.batch import BatchRun, TapeStore, simulate_batch

from test_event_stepping import _sparse_program

#: Margin lockstep batching must clear over sequential event stepping
#: on an 8-run sweep: the leader pays the full event schedule once and
#: the seven followers replay only the data plane, so parity would mean
#: the replay is doing schedule work per member; 2.0x keeps CI
#: noise-proof (the observed factor on an unloaded host is ~2.9x).
SPEEDUP_FLOOR = 2.0

#: Sweep width of the perf gate (the paper's seed-sweep shape).
N_RUNS = 8


def _member_arrays(n):
    """Seed-varied input images: same program, different data per run."""
    members = []
    for seed in range(N_RUNS):
        rng = np.random.default_rng(seed)
        members.append({
            "A": rng.integers(1, 100, n),
            "B": rng.integers(1, 100, n),
        })
    return members


def _event_run(params, program, arrays):
    sim = ArraySimulator(params, program, strategy="event")
    for name, values in arrays.items():
        sim.load_array(name, values)
    return sim.run(halt_messages=999)


def test_batch_stepper_beats_sequential_event_on_sparse_sweep(scale):
    params = replace(ArchParams().scaled(8, 8), data_net_latency=30)
    n = 96
    program = _sparse_program(params, n)
    members = _member_arrays(n)
    reps = 3

    start = time.perf_counter()
    for _ in range(reps):
        event_results = [_event_run(params, program, arrays)
                         for arrays in members]
    event_seconds = (time.perf_counter() - start) / reps

    start = time.perf_counter()
    for _ in range(reps):
        batch_results = simulate_batch(
            params, program,
            [BatchRun(arrays=arrays) for arrays in members],
            halt_messages=999,
        )
    batch_seconds = (time.perf_counter() - start) / reps

    # Identical numbers first — a fast wrong simulator is worthless.
    for event, batch in zip(event_results, batch_results):
        assert batch.cycles == event.cycles
        assert batch.stats == event.stats
        assert batch.scratchpad.data == event.scratchpad.data
        assert batch.scratchpad.bank_conflicts == \
            event.scratchpad.bank_conflicts

    speedup = event_seconds / batch_seconds
    print(f"\nsparse-control 8x8, n={n}, mesh=30c, {N_RUNS} runs: "
          f"event {event_seconds * 1000:.1f} ms, "
          f"batch {batch_seconds * 1000:.1f} ms "
          f"({speedup:.2f}x, {event_results[0].cycles} cycles/run)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batch stepper only {speedup:.2f}x over sequential event "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


#: Margin the *vectorized* follower data plane must clear over
#: sequential naive stepping on a wide int-only sweep: with 31 of 32
#: members replaying eligible firings as single ufunc calls, the cohort
#: cost is dominated by the one recorded leader, so the floor scales
#: well past the 8-run gate's.  4.0x keeps CI noise-proof.
VECTOR_SPEEDUP_FLOOR = 4.0

#: Sweep width of the vectorized gate.
VECTOR_RUNS = 32


def test_vectorized_batch_beats_naive_on_wide_int_sweep(scale):
    """The tentpole gate: a 32-run int-only sparse-control cohort must
    run >= 4x faster than 32 sequential naive simulations, take the
    vector fast path (counters prove it), and stay bit-identical
    three ways (naive == event == batch)."""
    params = replace(ArchParams().scaled(8, 8), data_net_latency=30)
    n = 96
    program = _sparse_program(params, n)
    members = []
    for seed in range(VECTOR_RUNS):
        rng = np.random.default_rng(seed)
        members.append({
            "A": rng.integers(1, 100, n),
            "B": rng.integers(1, 100, n),
        })

    def _strategy_run(strategy, arrays):
        sim = ArraySimulator(params, program, strategy=strategy)
        for name, values in arrays.items():
            sim.load_array(name, values)
        return sim.run(halt_messages=999)

    start = time.perf_counter()
    naive_results = [_strategy_run("naive", arrays)
                     for arrays in members]
    naive_seconds = time.perf_counter() - start

    event_results = [_strategy_run("event", arrays)
                     for arrays in members]

    stats = EngineStats()
    start = time.perf_counter()
    batch_results = simulate_batch(
        params, program,
        [BatchRun(arrays=arrays) for arrays in members],
        halt_messages=999, stats=stats, tape_store=TapeStore(),
    )
    batch_seconds = time.perf_counter() - start

    # Bit-identity three ways before any timing claim.
    for naive, event, batch in zip(naive_results, event_results,
                                   batch_results):
        for reference in (naive, event):
            assert batch.cycles == reference.cycles
            assert batch.stats == reference.stats
            assert batch.scratchpad.data == reference.scratchpad.data
            assert batch.scratchpad.bank_conflicts == \
                reference.scratchpad.bank_conflicts

    # The int-only cohort must actually ride the vector plane: every
    # eligible firing as one ufunc call, no divergence fallbacks.
    assert stats.vector_evals > 0
    assert stats.fallback_rows == 0
    assert stats.tape_records == 1

    speedup = naive_seconds / batch_seconds
    print(f"\nsparse-control 8x8, n={n}, mesh=30c, {VECTOR_RUNS} runs: "
          f"naive {naive_seconds * 1000:.1f} ms, "
          f"batch {batch_seconds * 1000:.1f} ms "
          f"({speedup:.2f}x, {stats.vector_evals} vector evals)")
    assert speedup >= VECTOR_SPEEDUP_FLOOR, (
        f"vectorized batch only {speedup:.2f}x over sequential naive "
        f"(floor {VECTOR_SPEEDUP_FLOOR}x)"
    )


def test_profiler_phase_reports_the_batch_split(tmp_path):
    """A phase that moves the batch data plane carries a ``batch_split``
    stanza (the changed ``batch_stats()`` keys); a phase that does not
    omits the key entirely, keeping analytic-model profiles unchanged."""
    from repro.engine import BenchProfiler, Engine

    params = replace(ArchParams().scaled(8, 8), data_net_latency=30)
    n = 24
    program = _sparse_program(params, n)
    profiler = BenchProfiler(Engine(cache_dir=tmp_path / "cache"))
    profiler.phase("simulate:batch", lambda: simulate_batch(
        params, program,
        [BatchRun(arrays=arrays) for arrays in _member_arrays(n)],
        halt_messages=999, tape_store=TapeStore(),
    ))
    profiler.phase("assemble", lambda: None)
    batch_phase, idle_phase = profiler.phases
    split = batch_phase["batch_split"]
    assert split["vector_evals"] > 0
    assert split["tape_records"] == 1
    assert split["record_seconds"] > 0
    assert "batch_split" not in idle_phase


def test_bench_profile_prices_grouped_simulation(tmp_path, capsys):
    from repro.cli import main

    profile_path = tmp_path / "bench_profile.json"
    code = main([
        "bench", "--scale", "tiny",
        "--cache-dir", str(tmp_path / "cache"),
        "--profile", "--profile-out", str(profile_path),
    ])
    assert code == 0
    profiled_report = capsys.readouterr().out

    document = json.loads(profile_path.read_text(encoding="utf-8"))
    assert document["schema"] == BENCH_PROFILE_SCHEMA
    phases = document["phases"]
    names = [phase["phase"] for phase in phases]

    # The bench sweep runs every model against each workload at one
    # geometry, so multi-member batches exist and are priced as the
    # dedicated phase.
    assert "simulate:batch" in names
    batch_phase, = [p for p in phases if p["phase"] == "simulate:batch"]
    assert batch_phase["seconds"] >= 0
    assert isinstance(batch_phase["stats_delta"], dict)
    assert batch_phase["stats_delta"].get("simulations", 0) > 0

    # The profile is a side artifact: stdout stays byte-identical.
    code = main(["bench", "--scale", "tiny",
                 "--cache-dir", str(tmp_path / "cache2")])
    assert code == 0
    assert capsys.readouterr().out == profiled_report
