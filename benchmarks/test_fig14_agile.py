"""Benchmark: regenerate Figure 14 (Agile PE Assignment speedup)."""

from repro.experiments import fig14_agile


def test_fig14_agile(benchmark, scale):
    result = benchmark.pedantic(
        fig14_agile.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    assert 1.3 <= result.summary["geomean Agile speedup"] <= 3.5  # paper 2.03
    gains = {r["kernel"]: r["with_agile"] for r in result.rows}
    assert gains["GEMM"] > 1.8 and gains["HT"] > 1.8
    assert abs(gains["ADPCM"] - 1.0) < 0.05
