"""Benchmark: regenerate Table 4 (area and power breakdown)."""

import pytest

from repro.experiments import table4_area


def test_table4_area(benchmark):
    result = benchmark.pedantic(table4_area.run, rounds=3, iterations=1)
    print()
    print(result.to_table())
    assert result.summary["total area mm^2"] == pytest.approx(
        0.151, abs=0.005
    )
    assert result.summary["total power mW"] == pytest.approx(152.09, abs=1.0)
