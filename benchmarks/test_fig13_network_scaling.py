"""Benchmark: regenerate Figure 13 (network delay vs stages/frequency)."""

from repro.experiments import fig13_network_scaling


def test_fig13_network_scaling(benchmark):
    result = benchmark.pedantic(
        fig13_network_scaling.run, rounds=3, iterations=1
    )
    print()
    print(result.to_table())
    assert result.summary["prototype latency cycles @500MHz"] == 1.0
    # Latency in cycles stays low even at 2 GHz (the scalability claim).
    worst = max(
        r["latency_cycles"] for r in result.rows if r["frequency_ghz"] == 2.0
    )
    assert worst <= 6
