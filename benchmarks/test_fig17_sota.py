"""Benchmark: regenerate Figure 17 (vs state-of-the-art architectures)."""

from repro.experiments import fig17_sota


def test_fig17_sota(benchmark, scale):
    result = benchmark.pedantic(
        fig17_sota.run, args=(scale,), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    assert len(result.rows) == 13
    gaps = {
        rival: result.summary[f"geomean speedup vs {rival}"]
        for rival in ("softbrain", "tia", "revel", "riptide")
    }
    # Paper: 2.88x / 3.38x / 1.55x / 2.66x — assert ordering + coarse bands.
    assert all(gap > 1.1 for gap in gaps.values())
    assert gaps["revel"] == min(gaps.values())
    assert gaps["tia"] == max(gaps.values())
    assert 0.7 <= result.summary[
        "geomean vs best rival (non-intensive)"
    ] <= 1.4
